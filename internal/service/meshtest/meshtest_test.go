package meshtest_test

import (
	"fmt"
	"testing"

	"evilbloom/internal/service"
	"evilbloom/internal/service/meshtest"
)

// statusFor finds the fetched-peer row for the given base URL.
func statusFor(t *testing.T, sts []service.PeerStatus, peer string) service.PeerStatus {
	t.Helper()
	for _, st := range sts {
		if st.Peer == peer && st.Source == "fetched" {
			return st
		}
	}
	t.Fatalf("no fetched row for peer %s in %+v", peer, sts)
	return service.PeerStatus{}
}

// fetchTargets lists the base URLs a node's refresh loop watches.
func fetchTargets(sts []service.PeerStatus) []string {
	var out []string
	for _, st := range sts {
		if st.Source == "fetched" {
			out = append(out, st.Peer)
		}
	}
	return out
}

// A peer revoked while its digest fetch is in flight must never have that
// digest imported: whichever way the race lands — refused before the
// fetch, refused at import, or imported then evicted — the victim ends
// the round holding nothing sealed by the revoked principal. Run under
// -race, over several fresh meshes so the interleavings vary.
func TestRevokedMidRefreshNeverImports(t *testing.T) {
	for round := 0; round < 8; round++ {
		t.Run(fmt.Sprintf("round-%d", round), func(t *testing.T) {
			m := meshtest.StartMesh(t, 2, meshtest.Opts{Auth: true})
			victim, sibling := m.Nodes[0], m.Nodes[1]

			f, err := sibling.Registry.Get(m.Filter)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				f.Store().Add([]byte{byte(i), 'r', byte(round)})
			}

			ref, err := victim.Engine.Lookup(m.Filter)
			if err != nil {
				t.Fatal(err)
			}

			// Race the fetch against the revocation.
			start := make(chan struct{})
			done := make(chan error, 1)
			go func() {
				<-start
				_, err := victim.Engine.RefreshPeers(ref)
				done <- err
			}()
			close(start)
			if _, found := victim.Engine.RevokePeerToken(meshtest.PeerName(1)); !found {
				t.Fatal("revocation did not find node1's credential")
			}
			if err := <-done; err != nil {
				t.Fatalf("refresh: %v", err)
			}

			// The revocation has returned: from here on the victim must hold
			// no digest from the revoked peer, regardless of how far the
			// concurrent fetch had gotten.
			sts := victim.Status(t, m.Filter)
			st := statusFor(t, sts, sibling.URL)
			if st.HasDigest {
				t.Fatalf("victim holds a digest from the revoked peer: %+v", st)
			}
			for _, row := range sts {
				if row.HasDigest && row.SealedBy == meshtest.PeerName(1) {
					t.Fatalf("digest sealed by the revoked principal survives: %+v", row)
				}
			}
		})
	}
}

// The acceptance bar for the delta path: on a sparse update the refresh
// ships a delta frame that is measurably smaller than the full envelope —
// and an unchanged filter still costs a 304, not a re-download.
func TestDeltaRefreshShipsFewerBytes(t *testing.T) {
	// A single wide shard (4096 bits → 64 words) makes the full envelope
	// ~612 bytes while one added item touches at most k=4 words, so its
	// delta frame stays near 116 bytes.
	cfg := service.Config{
		Shards:    1,
		ShardBits: 4096,
		HashCount: 4,
		Seed:      7,
		RouteKey:  []byte("fedcba9876543210"),
	}
	m := meshtest.StartMesh(t, 2, meshtest.Opts{FilterCfg: &cfg})
	m.AwaitBoot(t)
	src, dst := m.Nodes[0], m.Nodes[1]

	// The quiesced boot exchange shipped exactly one full envelope, whose
	// size depends only on geometry — the denominator for every saving.
	st := statusFor(t, dst.Status(t, m.Filter), src.URL)
	if !st.HasDigest || st.Fetches != 1 || st.DeltaFetches != 0 {
		t.Fatalf("boot exchange: %+v, want one full fetch", st)
	}
	fullBytes := st.BytesFetched
	if fullBytes == 0 {
		t.Fatal("boot exchange shipped zero bytes")
	}

	f, err := src.Registry.Get(m.Filter)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		f.Store().Add([]byte{byte(i), 'd'})
	}

	// A dense update rides the delta path too (the fetcher ACKed the boot
	// envelope), but with most words touched it saves little — the point
	// of the frame is the sparse case below.
	st = statusFor(t, dst.Refresh(t, m.Filter), src.URL)
	if !st.HasDigest || st.DeltaFetches != 1 {
		t.Fatalf("dense refresh: %+v, want a delta fetch", st)
	}
	prevBytes := st.BytesFetched

	// Sparse update: one item touches at most k words. The exchange must
	// ride the delta frame and cost a fraction of the envelope.
	f.Store().Add([]byte("one-more"))
	st = statusFor(t, dst.Refresh(t, m.Filter), src.URL)
	if st.DeltaFetches != 2 {
		t.Fatalf("sparse refresh: %+v, want a second delta fetch", st)
	}
	deltaBytes := st.BytesFetched - prevBytes
	if deltaBytes == 0 {
		t.Fatal("sparse delta refresh shipped zero bytes")
	}
	if deltaBytes*3 >= fullBytes {
		t.Fatalf("sparse delta shipped %d bytes against a %d-byte full envelope; want < 1/3",
			deltaBytes, fullBytes)
	}
	if st.Generation == 0 || st.DigestWeight == 0 {
		t.Fatalf("delta-applied digest looks empty: %+v", st)
	}
	prevBytes = st.BytesFetched

	// Unchanged filter: the ETag short-circuit must survive the delta
	// path — a 304 ships no frame bytes at all.
	st = statusFor(t, dst.Refresh(t, m.Filter), src.URL)
	if st.NotModified != 1 || st.BytesFetched != prevBytes {
		t.Fatalf("unchanged refresh: %+v, want one 304 and no new bytes", st)
	}
}

// Topologies shape who fetches whom: a ring node watches only its
// successor; a hub fans out to every spoke while spokes watch the hub.
func TestMeshTopologyShapes(t *testing.T) {
	seed := func(m *meshtest.Mesh) {
		for _, nd := range m.Nodes {
			f, err := nd.Registry.Get(m.Filter)
			if err != nil {
				t.Fatal(err)
			}
			f.Store().Add([]byte(nd.URL))
		}
	}
	watches := func(nd *meshtest.Node) []string {
		return fetchTargets(nd.Status(t, "cache"))
	}

	t.Run("ring", func(t *testing.T) {
		m := meshtest.StartMesh(t, 3, meshtest.Opts{Topology: service.TopologyRing})
		seed(m)
		m.RefreshAll(t)
		for i, nd := range m.Nodes {
			got := watches(nd)
			want := m.Nodes[(i+1)%3].URL
			if len(got) != 1 || got[0] != want {
				t.Errorf("ring node %d watches %v, want [%s]", i, got, want)
			}
			st := statusFor(t, nd.Refresh(t, m.Filter), want)
			if !st.HasDigest {
				t.Errorf("ring node %d holds no successor digest: %+v", i, st)
			}
		}
	})

	t.Run("hub", func(t *testing.T) {
		m := meshtest.StartMesh(t, 3, meshtest.Opts{Topology: service.TopologyHub})
		seed(m)
		m.RefreshAll(t)
		if got := watches(m.Nodes[0]); len(got) != 2 {
			t.Errorf("hub watches %v, want both spokes", got)
		}
		for i := 1; i < 3; i++ {
			got := watches(m.Nodes[i])
			if len(got) != 1 || got[0] != m.Nodes[0].URL {
				t.Errorf("spoke %d watches %v, want [%s]", i, got, m.Nodes[0].URL)
			}
		}
	})
}
