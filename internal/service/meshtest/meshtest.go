// Package meshtest boots N-node evilbloom digest meshes on loopback for
// tests. Each node is the full production stack — a service.Registry
// wrapped by an engine.Engine behind an httpapi server on an httptest
// listener — wired into a digest-exchange mesh exactly the way
// cmd/evilbloom serve would wire it: peer credentials first (the node's
// own entry leading its -peer-token list), then the roster topology, then
// the filters whose refresh loops join the mesh.
//
// The harness owns teardown: servers close, registries close, and the
// cleanup asserts every peer-refresh goroutine the mesh started has
// exited — a mesh test cannot leak loops into its neighbors.
package meshtest

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"evilbloom/internal/engine"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
)

// Opts configures StartMesh. The zero value is a usable unauthenticated
// pairs mesh with the §7 experiment geometry.
type Opts struct {
	// Topology picks which roster members each node fetches (default
	// pairs: everyone fetches everyone else).
	Topology service.Topology
	// Auth, when set, installs mesh credentials on every node: node i's
	// roster leads with its own "node<i>" entry, mirroring how each real
	// server's -peer-token list leads with its own credential. Digests are
	// then sealed, fetches authenticated, and unauthenticated pushes
	// refused.
	Auth bool
	// RouteQuorum is each node's route verdict threshold (0 keeps the
	// default of 1, the first-claiming-peer rule).
	RouteQuorum int
	// Refresh is the mesh refresh interval. Defaults to an hour: tests
	// drive the exchange explicitly (Node.Refresh) for determinism, the
	// same reason the two-server campaign test does.
	Refresh time.Duration
	// Filter names the same-named filter created on every node (default
	// "cache").
	Filter string
	// FilterCfg overrides the filter geometry (nil → Section7Geometry).
	FilterCfg *service.Config
}

// Node is one mesh member: the full stack plus its mesh identity.
type Node struct {
	// Index is the node's roster position.
	Index int
	// PeerName is the node's mesh principal name ("node<i>"); empty on an
	// unauthenticated mesh.
	PeerName string
	// Token is the node's own "name:secret" credential; empty without Auth.
	Token string
	// URL is the node's base URL, also its roster entry.
	URL string

	Registry *service.Registry
	Engine   *engine.Engine
	Server   *httptest.Server
}

// Mesh is a running N-node digest mesh.
type Mesh struct {
	// Nodes holds the members in roster order.
	Nodes []*Node
	// Filter is the name of the filter every node serves.
	Filter string
}

// Section7Geometry is the experiment filter every mesh test shares unless
// overridden: single shard so an adversary's shadow is exact, k=4 like
// Squid, sized so 151 honest items land near the paper's ≈40% false-hit
// digest — and small enough that pollution saturates it within the §7
// item budget.
func Section7Geometry() service.Config {
	return service.Config{
		Shards:    1,
		ShardBits: 384,
		HashCount: 4,
		Seed:      7,
		RouteKey:  []byte("fedcba9876543210"),
	}
}

// PeerName returns the deterministic mesh principal name of roster
// position i.
func PeerName(i int) string { return fmt.Sprintf("node%d", i) }

// PeerToken returns roster position i's full "name:secret" credential —
// what a test presents to push as that node, or hands to an evil client
// impersonating it.
func PeerToken(i int) string {
	return fmt.Sprintf("%s:secret-%s", PeerName(i), PeerName(i))
}

// StartMesh boots an n-node mesh (n ≥ 2) and registers teardown on t.
// Boot order mirrors cmd/evilbloom serve: stack and listener up, peer
// credentials installed (when Auth), roster configured with the node's
// own URL as Self, then the shared filter created on every node — which
// starts the refresh loops that join the mesh.
func StartMesh(t testing.TB, n int, opts Opts) *Mesh {
	t.Helper()
	if n < 2 {
		t.Fatalf("meshtest: mesh of %d nodes; want ≥ 2", n)
	}
	filter := opts.Filter
	if filter == "" {
		filter = "cache"
	}
	refresh := opts.Refresh
	if refresh == 0 {
		refresh = time.Hour
	}
	cfg := Section7Geometry()
	if opts.FilterCfg != nil {
		cfg = *opts.FilterCfg
	}

	baseline := RefreshLoopCount()
	nodes := make([]*Node, n)
	urls := make([]string, n)
	for i := range nodes {
		reg := service.NewRegistry()
		eng := engine.New(reg)
		ts := httptest.NewServer(httpapi.NewEngineServer(eng))
		nodes[i] = &Node{Index: i, Registry: reg, Engine: eng, Server: ts, URL: ts.URL}
		urls[i] = ts.URL
	}
	// Registered before any node is wired so a mid-boot t.Fatal still
	// tears the partial mesh down.
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Server.Close()
			nd.Registry.Close() //nolint:errcheck // teardown
		}
		waitRefreshLoops(t, baseline)
	})

	if opts.Auth {
		for i, nd := range nodes {
			entries := make([]string, 0, n)
			for j := 0; j < n; j++ {
				entries = append(entries, PeerToken((i+j)%n))
			}
			nd.PeerName = PeerName(i)
			nd.Token = entries[0]
			if err := nd.Engine.ConfigurePeerAuth(entries); err != nil {
				t.Fatalf("meshtest: node %d peer auth: %v", i, err)
			}
		}
	}
	for i, nd := range nodes {
		err := nd.Registry.ConfigurePeers(service.PeerConfig{
			Peers:       urls,
			Topology:    opts.Topology,
			Self:        urls[i],
			RouteQuorum: opts.RouteQuorum,
			Refresh:     refresh,
		})
		if err != nil {
			t.Fatalf("meshtest: node %d peers: %v", i, err)
		}
	}
	for i, nd := range nodes {
		if _, err := nd.Registry.Create(filter, cfg); err != nil {
			t.Fatalf("meshtest: node %d filter %q: %v", i, filter, err)
		}
	}
	return &Mesh{Nodes: nodes, Filter: filter}
}

// Refresh forces one node to fetch every configured sibling's digest for
// the named filter now — the deterministic stand-in for the refresh
// interval elapsing.
func (nd *Node) Refresh(t testing.TB, filter string) []service.PeerStatus {
	t.Helper()
	ref, err := nd.Engine.Lookup(filter)
	if err != nil {
		t.Fatalf("meshtest: node %d lookup %q: %v", nd.Index, filter, err)
	}
	sts, err := nd.Engine.RefreshPeers(ref)
	if err != nil {
		t.Fatalf("meshtest: node %d refresh %q: %v", nd.Index, filter, err)
	}
	return sts
}

// Status snapshots one node's peer accounting for the named filter
// without driving an exchange.
func (nd *Node) Status(t testing.TB, filter string) []service.PeerStatus {
	t.Helper()
	ref, err := nd.Engine.Lookup(filter)
	if err != nil {
		t.Fatalf("meshtest: node %d lookup %q: %v", nd.Index, filter, err)
	}
	sts, err := nd.Engine.PeerStatus(ref)
	if err != nil {
		t.Fatalf("meshtest: node %d status %q: %v", nd.Index, filter, err)
	}
	return sts
}

// AwaitBoot blocks until every node's refresh loop has completed the
// immediate boot exchange against every sibling it watches. A test that
// drives exchanges explicitly should quiesce here first: afterwards the
// next loop-driven exchange is a whole refresh interval away, so the
// test's own Refresh calls never race the loop's.
func (m *Mesh) AwaitBoot(t testing.TB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for _, nd := range m.Nodes {
		for {
			pending := false
			for _, st := range nd.Status(t, m.Filter) {
				if st.Source == "fetched" && st.Fetches+st.NotModified+st.Failures == 0 {
					pending = true
				}
			}
			if !pending {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("meshtest: node %d boot exchanges still pending", nd.Index)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// RefreshAll refreshes the mesh filter on every node.
func (m *Mesh) RefreshAll(t testing.TB) {
	t.Helper()
	for _, nd := range m.Nodes {
		nd.Refresh(t, m.Filter)
	}
}

// RefreshLoopCount counts live peer-refresh goroutines across the whole
// process by stack inspection — the leak observable every mesh teardown
// asserts on.
func RefreshLoopCount() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return strings.Count(string(buf[:n]), "(*Peers).refreshLoop")
}

// WaitNoRefreshLoops blocks until no peer-refresh goroutine remains,
// failing t if any survives the deadline.
func WaitNoRefreshLoops(t testing.TB) {
	t.Helper()
	waitRefreshLoops(t, 0)
}

// waitRefreshLoops waits for the refresh-goroutine count to drop to the
// given baseline (loops from unrelated concurrent tests stay out of the
// assertion).
func waitRefreshLoops(t testing.TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for RefreshLoopCount() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("meshtest: %d peer-refresh goroutine(s) still running after teardown (baseline %d)",
				RefreshLoopCount(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}
