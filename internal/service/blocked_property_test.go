package service

import (
	"bytes"
	"fmt"
	"testing"

	"evilbloom/internal/cachedigest"
	"evilbloom/internal/core"
	"evilbloom/internal/urlgen"
)

// blockedGeometries spans the dimensions that matter to the blocked layout:
// single- and multi-shard stores, one-block and many-block shards, varying
// k, and a ShardBits that is not a multiple of the block size (the config
// layer must round it up rather than reject it).
var blockedGeometries = []struct {
	shards    int
	shardBits uint64
	k         int
}{
	{1, core.BlockBits, 3},
	{2, 4 * core.BlockBits, 4},
	{8, 16 * core.BlockBits, 5},
	{4, 3000, 4}, // rounds up to 3072 = 6 blocks
}

func blockedCfg(shards int, shardBits uint64, k int) Config {
	return Config{
		Variant:   VariantBlocked,
		Shards:    shards,
		ShardBits: shardBits,
		HashCount: k,
		Mode:      ModeNaive,
		Seed:      21,
		RouteKey:  []byte("fedcba9876543210"),
	}
}

// TestBlockedSnapshotRoundTripAcrossGeometries mirrors the persist matrix
// for the blocked variant's geometry axis: a snapshot restored into a fresh
// store of the same configuration re-serializes byte-identically and
// answers membership identically.
func TestBlockedSnapshotRoundTripAcrossGeometries(t *testing.T) {
	for _, g := range blockedGeometries {
		t.Run(fmt.Sprintf("shards=%d-bits=%d-k=%d", g.shards, g.shardBits, g.k), func(t *testing.T) {
			cfg := blockedCfg(g.shards, g.shardBits, g.k)
			a, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := a.ShardBits(); got%core.BlockBits != 0 {
				t.Fatalf("shard bits %d not rounded to a block multiple", got)
			}
			gen := urlgen.New(33)
			items := make([][]byte, 300)
			for i := range items {
				items[i] = gen.Next()
			}
			a.AddBatch(items)

			snap, err := a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Restore(snap); err != nil {
				t.Fatal(err)
			}
			again, err := b.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, again) {
				t.Error("restored store re-serializes differently")
			}
			probe := urlgen.New(44)
			for i := 0; i < 300; i++ {
				it := probe.Next()
				if a.Test(it) != b.Test(it) {
					t.Fatalf("membership of probe %q diverges after restore", it)
				}
			}
			for _, it := range items {
				if !b.Test(it) {
					t.Fatalf("restored store lost %q", it)
				}
			}
		})
	}
}

// TestBlockedDigestExportParity pins the §7 exchange for the blocked
// variant: a peer evaluating the exported digest must answer every
// membership query exactly as the exporting filter does — true positives
// AND the filter's own false positives, since a digest is a bit-exact
// projection of occupancy. This is the property the BlockedPosition remap
// in cachedigest exists for; without it every multi-probe lookup would miss.
func TestBlockedDigestExportParity(t *testing.T) {
	for _, g := range blockedGeometries {
		t.Run(fmt.Sprintf("shards=%d-bits=%d-k=%d", g.shards, g.shardBits, g.k), func(t *testing.T) {
			s, err := NewSharded(blockedCfg(g.shards, g.shardBits, g.k))
			if err != nil {
				t.Fatal(err)
			}
			gen := urlgen.New(55)
			items := make([][]byte, 250)
			for i := range items {
				items[i] = gen.Next()
			}
			s.AddBatch(items)

			env, gen64, err := s.DigestEnvelope()
			if err != nil {
				t.Fatal(err)
			}
			pd, err := cachedigest.OpenEnvelope(env)
			if err != nil {
				t.Fatal(err)
			}
			if pd.Generation() != gen64 {
				t.Fatalf("digest generation %d, export reported %d", pd.Generation(), gen64)
			}
			for _, it := range items {
				if !pd.Test(it) {
					t.Fatalf("digest misses added item %q", it)
				}
			}
			probe := urlgen.New(66)
			for i := 0; i < 2000; i++ {
				it := probe.Next()
				if got, want := pd.Test(it), s.Test(it); got != want {
					t.Fatalf("digest and filter disagree on %q: digest %v, filter %v", it, got, want)
				}
			}
		})
	}
}

// TestBlockedDigestEnvelopeValidation: a blocked-source envelope whose
// shard size is not a multiple of the block size cannot have been produced
// by a real exporter and must be refused at decode time.
func TestBlockedDigestEnvelopeValidation(t *testing.T) {
	s, err := NewSharded(blockedCfg(2, 4*core.BlockBits, 4))
	if err != nil {
		t.Fatal(err)
	}
	s.Add([]byte("x"))
	env, _, err := s.DigestEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	info, err := cachedigest.DecodeEnvelopeInfo(env)
	if err != nil {
		t.Fatal(err)
	}
	if info.SourceVariant != cachedigest.SourceVariantBlocked {
		t.Fatalf("source variant %d, want %d", info.SourceVariant, cachedigest.SourceVariantBlocked)
	}
}
