package service

import (
	"container/list"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"
)

// Rate-limit subsystem: per-client mutation budgets on the v2 mutation
// plane, the paper's own suggested operational defense against
// chosen-insertion pollution (§8) made concrete. Every mutation — add,
// add-batch, remove, remove-batch, digest push — is charged against a
// token bucket keyed by (filter, client identity); batch operations charge
// per item, because the damage an adversary does scales with insertions,
// not with HTTP round trips. Exhausted budgets answer 429 with Retry-After.
//
// The same table doubles as pollution accounting: even with throttling
// disabled (the default) every mutation is attributed to a client identity,
// so GET /v2/filters/{name}/clients names who filled a filter — the
// forensic half of the defense. The table itself is bounded: at most
// MaxClients identities per filter, least-recently-seen evicted first with
// their counts folded into aggregate totals, so identity churn (trivial for
// a spoofing client behind -trust-proxy) cannot memory-exhaust the server
// through its own defense.
//
// Rate limiting is the deployable mitigation tier below keyed hashing: a
// naive filter stays attackable in principle, but the attacker's insertion
// budget — and with it the reachable FPR — is capped. The registry can A/B
// the full ladder per filter: naive unthrottled, naive rate-limited,
// hardened keyed. attack.RemoteThrottledPollution measures the middle tier.

// Rate-limit defaults; RateLimitConfig fields override them.
// DefaultRateClientsMax bounds each filter's client accounting table.
const DefaultRateClientsMax = 1024

// ClientIdentityHeader is the header a client may use to self-identify for
// rate limiting and accounting. It is honored only when the server runs
// with -trust-proxy: identity headers are claims, and only a trusted proxy
// tier makes them worth believing.
const ClientIdentityHeader = "X-Evilbloom-Client"

// RateLimitConfig tunes the registry's mutation rate limiting.
type RateLimitConfig struct {
	// MutationsPerSec is each client's sustained per-filter mutation budget
	// (items per second, not requests: batches charge per item). Zero
	// disables throttling; accounting still runs.
	MutationsPerSec float64
	// Burst is the bucket capacity — how many mutations a client may spend
	// at once after idling. Defaults to one second of budget, floor 1.
	// Requires MutationsPerSec.
	Burst float64
	// MaxClients bounds each filter's accounting table
	// (DefaultRateClientsMax when zero); least-recently-seen identities are
	// evicted beyond it, their counts preserved in aggregate.
	MaxClients int
	// TrustProxy honors X-Evilbloom-Client and X-Forwarded-For (rightmost,
	// nearest-proxy entry) for client identity instead of the transport
	// peer address. Enable only behind a proxy tier that sets or sanitizes
	// those headers: with it, identities are claims, and per-identity
	// throttling is only as strong as the claim's source.
	TrustProxy bool
}

// EffectiveBurst resolves the burst the configuration yields: the explicit
// Burst, else one second of budget with a floor of one mutation. The
// single authority for the defaulting rule — the serve banner prints it
// and configure installs it.
func (c RateLimitConfig) EffectiveBurst() float64 {
	if c.Burst > 0 {
		return c.Burst
	}
	return math.Max(c.MutationsPerSec, 1)
}

// Limiter charges mutations against per-(filter, client) token buckets and
// keeps the per-client accounting table. The zero-configuration Limiter
// (every registry has one) throttles nothing but still accounts, so
// pollution attribution works on every server.
type Limiter struct {
	mu         sync.RWMutex
	rate       float64 // tokens (mutations) per second; 0 = no throttling
	burst      float64
	maxClients int
	trustProxy bool
	configured bool
	// now is the clock, swappable so tests pin token arithmetic exactly.
	now     func() time.Time
	filters map[string]*filterClients
}

// filterClients is one filter's accounting table.
type filterClients struct {
	mu      sync.Mutex
	clients map[string]*clientEntry
	// lru orders entries by last use, front = most recent; Element values
	// are *clientEntry.
	lru list.List
	// evicted* preserve the totals of evicted entries so aggregate counts
	// survive table churn.
	evicted          uint64
	evictedAllowed   uint64
	evictedThrottled uint64
}

// clientEntry is one client's bucket and counters within one filter.
type clientEntry struct {
	id   string
	elem *list.Element
	// tokens and last implement the bucket: tokens refill at the limiter's
	// rate since last, capped at burst.
	tokens float64
	last   time.Time
	// allowed and throttled count mutations (items, not requests).
	allowed   uint64
	throttled uint64
	lastSeen  time.Time
}

// newLimiter builds the accounting-only default.
func newLimiter() *Limiter {
	return &Limiter{
		maxClients: DefaultRateClientsMax,
		now:        time.Now,
		filters:    make(map[string]*filterClients),
	}
}

// configure installs the rate-limit configuration. One-shot, before
// traffic, like the peer mesh.
func (l *Limiter) configure(cfg RateLimitConfig) error {
	if cfg.MutationsPerSec < 0 || math.IsNaN(cfg.MutationsPerSec) || math.IsInf(cfg.MutationsPerSec, 0) {
		return fmt.Errorf("service: mutation rate %v must be a finite non-negative number", cfg.MutationsPerSec)
	}
	if cfg.Burst < 0 || math.IsNaN(cfg.Burst) || math.IsInf(cfg.Burst, 0) {
		return fmt.Errorf("service: mutation burst %v must be a finite non-negative number", cfg.Burst)
	}
	if cfg.Burst > 0 && cfg.MutationsPerSec == 0 {
		return fmt.Errorf("service: a mutation burst needs a mutation rate; burst alone throttles nothing")
	}
	if cfg.MaxClients < 0 {
		return fmt.Errorf("service: max clients %d must be non-negative", cfg.MaxClients)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.configured {
		return fmt.Errorf("service: rate limiting already configured")
	}
	l.configured = true
	l.rate = cfg.MutationsPerSec
	if l.rate > 0 {
		l.burst = cfg.EffectiveBurst()
	}
	if cfg.MaxClients > 0 {
		l.maxClients = cfg.MaxClients
	}
	l.trustProxy = cfg.TrustProxy
	return nil
}

// Enabled reports whether mutation throttling is active (accounting always
// is).
func (l *Limiter) Enabled() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.rate > 0
}

// TrustProxy reports whether client-identity headers are honored.
func (l *Limiter) TrustProxy() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.trustProxy
}

// maxRetrySeconds clamps Retry-After arithmetic: a pathologically small
// rate would otherwise overflow time.Duration (deficit/rate in nanoseconds
// past MaxInt64) and wrap into a nonsense answer. Past ~68 years the bucket
// is effectively never refilling anyway.
const maxRetrySeconds = float64(1 << 31)

// Allow charges n mutations on filter to client. When the client's bucket
// covers the charge (or throttling is disabled) it records the mutations as
// allowed and returns true; otherwise nothing is consumed, the mutations
// are recorded as throttled, and retry says how long until the bucket
// refills enough — the Retry-After the HTTP layer serves with its 429. A
// charge larger than the burst can never succeed (retry reports the full
// deficit's refill time); clients must split such batches.
//
// Tables exist only for watched (published) filters: a charge against an
// unknown filter — a mutation draining against a just-deleted store — is
// allowed without recording, so an in-flight request racing Delete cannot
// resurrect the dropped accounting and leak it into a successor filter of
// the same name.
func (l *Limiter) Allow(filter, client string, n int) (ok bool, retry time.Duration) {
	if n <= 0 {
		return true, 0
	}
	l.mu.RLock()
	rate, burst, maxClients, now := l.rate, l.burst, l.maxClients, l.now()
	fc := l.filters[filter]
	l.mu.RUnlock()
	if fc == nil {
		return true, 0
	}

	fc.mu.Lock()
	defer fc.mu.Unlock()
	e := fc.clients[client]
	if e == nil {
		fc.evictFor(1, maxClients)
		e = &clientEntry{id: client, tokens: burst, last: now}
		e.elem = fc.lru.PushFront(e)
		fc.clients[client] = e
	} else {
		fc.lru.MoveToFront(e.elem)
	}
	e.lastSeen = now
	if rate > 0 {
		e.refill(rate, burst, now)
		need := float64(n)
		if e.tokens < need {
			e.throttled += uint64(n)
			secs := (need - e.tokens) / rate
			if secs > maxRetrySeconds {
				secs = maxRetrySeconds
			}
			return false, time.Duration(math.Ceil(secs * float64(time.Second)))
		}
		e.tokens -= need
	}
	e.allowed += uint64(n)
	return true, 0
}

// Refund hands n mutations back to client's bucket on filter and reverses
// their accounting — for the write paths whose validation happens inside
// the subsystem they mutate (digest push): the charge is taken before the
// envelope is parsed, and if nothing was applied the client must not have
// paid. Refunding an identity the table no longer holds (evicted, filter
// dropped) is a no-op: the charge is already aggregate history.
func (l *Limiter) Refund(filter, client string, n int) {
	if n <= 0 {
		return
	}
	l.mu.RLock()
	rate, burst := l.rate, l.burst
	fc := l.filters[filter]
	l.mu.RUnlock()
	if fc == nil {
		return
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	e := fc.clients[client]
	if e == nil {
		return
	}
	if rate > 0 {
		e.tokens = math.Min(burst, e.tokens+float64(n))
	}
	if un := uint64(n); e.allowed >= un {
		e.allowed -= un
	} else {
		e.allowed = 0
	}
}

// watch provisions a filter's accounting table at publish time — the same
// moment peers.watch runs, and for the same reason: state is created
// before traffic can reach the filter and torn down exactly once by
// Delete, never resurrected by stragglers.
func (l *Limiter) watch(filter string) {
	l.filterClients(filter)
}

// refill advances the bucket to now.
func (e *clientEntry) refill(rate, burst float64, now time.Time) {
	if dt := now.Sub(e.last).Seconds(); dt > 0 {
		e.tokens = math.Min(burst, e.tokens+dt*rate)
	}
	e.last = now
}

// evictFor makes room for n new entries under max, folding evicted entries'
// counts into the aggregate totals. The caller holds fc.mu.
func (fc *filterClients) evictFor(n, max int) {
	for len(fc.clients)+n > max {
		back := fc.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*clientEntry)
		fc.lru.Remove(back)
		delete(fc.clients, e.id)
		fc.evicted++
		fc.evictedAllowed += e.allowed
		fc.evictedThrottled += e.throttled
	}
}

// filterClients returns (creating if needed) one filter's table.
func (l *Limiter) filterClients(filter string) *filterClients {
	l.mu.Lock()
	defer l.mu.Unlock()
	fc := l.filters[filter]
	if fc == nil {
		fc = &filterClients{clients: make(map[string]*clientEntry)}
		l.filters[filter] = fc
	}
	return fc
}

// drop discards a deleted filter's accounting.
func (l *Limiter) drop(filter string) {
	l.mu.Lock()
	delete(l.filters, filter)
	l.mu.Unlock()
}

// ClientStatus is one client's accounting as served on GET .../clients.
type ClientStatus struct {
	// Client is the identity mutations were attributed to: the transport
	// peer address, or (with -trust-proxy) a header-claimed identity.
	Client string `json:"client"`
	// Allowed and Throttled count mutations (items, not requests).
	Allowed   uint64 `json:"allowed"`
	Throttled uint64 `json:"throttled,omitempty"`
	// Tokens is the bucket's current charge capacity (throttling only).
	Tokens float64 `json:"tokens,omitempty"`
	// IdleSeconds is the time since the client's last mutation attempt.
	IdleSeconds float64 `json:"idle_seconds"`
}

// ClientsReport answers GET /v2/filters/{name}/clients: the per-client
// mutation accounting, worst offenders first.
type ClientsReport struct {
	// Enabled reports whether throttling is active; accounting always is.
	Enabled bool `json:"enabled"`
	// MutationsPerSec and Burst echo the active budget (throttling only).
	MutationsPerSec float64 `json:"mutations_per_sec,omitempty"`
	Burst           float64 `json:"burst,omitempty"`
	// MaxClients is the table bound; beyond it the least-recently-seen
	// client is evicted into the aggregate Evicted* totals.
	MaxClients int `json:"max_clients"`
	// Clients lists tracked identities, most-throttled (then most-allowed)
	// first, so the top entry is the likeliest polluter.
	Clients []ClientStatus `json:"clients"`
	// EvictedClients counts identities evicted from the table; their
	// mutation counts are preserved below.
	EvictedClients   uint64 `json:"evicted_clients,omitempty"`
	EvictedAllowed   uint64 `json:"evicted_allowed,omitempty"`
	EvictedThrottled uint64 `json:"evicted_throttled,omitempty"`
}

// Clients snapshots one filter's accounting table in O(clients).
func (l *Limiter) Clients(filter string) ClientsReport {
	l.mu.RLock()
	rate, burst, maxClients, now := l.rate, l.burst, l.maxClients, l.now()
	fc := l.filters[filter]
	l.mu.RUnlock()
	rep := ClientsReport{
		Enabled:    rate > 0,
		MaxClients: maxClients,
		Clients:    []ClientStatus{},
	}
	if rep.Enabled {
		rep.MutationsPerSec, rep.Burst = rate, burst
	}
	if fc == nil {
		return rep
	}
	fc.mu.Lock()
	rep.EvictedClients = fc.evicted
	rep.EvictedAllowed = fc.evictedAllowed
	rep.EvictedThrottled = fc.evictedThrottled
	for _, e := range fc.clients {
		cs := ClientStatus{
			Client:      e.id,
			Allowed:     e.allowed,
			Throttled:   e.throttled,
			IdleSeconds: now.Sub(e.lastSeen).Seconds(),
		}
		if rep.Enabled {
			// Project the lazy refill forward for display without mutating
			// the bucket.
			cs.Tokens = math.Min(burst, e.tokens+now.Sub(e.last).Seconds()*rate)
		}
		rep.Clients = append(rep.Clients, cs)
	}
	fc.mu.Unlock()
	sort.Slice(rep.Clients, func(i, j int) bool {
		a, b := rep.Clients[i], rep.Clients[j]
		if a.Throttled != b.Throttled {
			return a.Throttled > b.Throttled
		}
		if a.Allowed != b.Allowed {
			return a.Allowed > b.Allowed
		}
		return a.Client < b.Client
	})
	return rep
}

// RateLimitStats is the aggregate rate-limit slice of a filter's stats.
type RateLimitStats struct {
	Enabled         bool    `json:"enabled"`
	MutationsPerSec float64 `json:"mutations_per_sec,omitempty"`
	Burst           float64 `json:"burst,omitempty"`
	// Clients is the current table size; EvictedClients counts identities
	// aged out of it (their mutations stay in the totals below).
	Clients        int    `json:"clients"`
	EvictedClients uint64 `json:"evicted_clients,omitempty"`
	// AllowedMutations and ThrottledMutations total every charge ever made
	// against the filter, across live and evicted clients.
	AllowedMutations   uint64 `json:"allowed_mutations"`
	ThrottledMutations uint64 `json:"throttled_mutations"`
}

// FilterStats aggregates one filter's accounting in O(clients).
func (l *Limiter) FilterStats(filter string) RateLimitStats {
	l.mu.RLock()
	rate, burst := l.rate, l.burst
	fc := l.filters[filter]
	l.mu.RUnlock()
	st := RateLimitStats{Enabled: rate > 0}
	if st.Enabled {
		st.MutationsPerSec, st.Burst = rate, burst
	}
	if fc == nil {
		return st
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	st.Clients = len(fc.clients)
	st.EvictedClients = fc.evicted
	st.AllowedMutations = fc.evictedAllowed
	st.ThrottledMutations = fc.evictedThrottled
	for _, e := range fc.clients {
		st.AllowedMutations += e.allowed
		st.ThrottledMutations += e.throttled
	}
	return st
}

// IdentityFromRemoteAddr resolves the transport-peer identity every wire
// plane charges mutations to when no trusted proxy claim applies: the host
// part of a listener-reported remote address. The RESP plane uses it
// directly (no headers exist there to trust), so a client exhausting its
// budget over HTTP is equally exhausted over RESP — one bucket per peer
// host, not per plane. (Header-claimed and authenticated identities are
// resolved a layer up, in internal/engine, which owns the Principal
// abstraction; the limiter itself only ever sees opaque bucket keys.)
func IdentityFromRemoteAddr(remoteAddr string) string {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil || host == "" {
		return remoteAddr
	}
	return host
}

// MaxClientIdentity bounds claimed client identities (header-supplied or
// token names): they become map keys and JSON strings echoed back on the
// clients endpoint.
const MaxClientIdentity = 128

// ValidClientIdentity bounds claimed identities: non-empty, at most
// MaxClientIdentity bytes, printable ASCII with no whitespace.
func ValidClientIdentity(id string) bool {
	if id == "" || len(id) > MaxClientIdentity {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= 0x20 || id[i] >= 0x7f {
			return false
		}
	}
	return true
}

// SetNow swaps the limiter's clock — a test hook, so token arithmetic can
// be pinned exactly from packages that drive the limiter through a wire
// plane rather than in-process.
func (l *Limiter) SetNow(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}
