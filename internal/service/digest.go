package service

import (
	"errors"
	"fmt"

	"evilbloom/internal/bitset"
	"evilbloom/internal/cachedigest"
)

// ErrDigestUnexportable answers digest requests against a hardened filter:
// a digest is only useful to a peer that can reproduce the index mapping,
// and a hardened filter's keyed family never leaves the server. Exporting
// the bare bits would hand out an envelope no honest peer can evaluate —
// and a dishonest one could still mine for occupancy statistics — so the
// request is refused outright.
var ErrDigestUnexportable = errors.New(
	"service: hardened filters export no digest: the keyed index family never travels (use a naive filter for digest exchange)")

// DigestETag renders a store generation as the digest endpoint's entity
// tag. The store's per-boot salt is folded in because the generation
// counter resets on restart: without it, a restarted filter's generation
// would re-pass through values a peer already holds and earn a spurious
// 304 for different content.
func (s *Sharded) DigestETag(gen uint64) string {
	return fmt.Sprintf("%q", fmt.Sprintf("evb-digest-%x-%d", s.etagSalt, gen))
}

// gatherOccupancy snapshots the store's occupancy pattern and the envelope
// header describing it. Shards are read-locked one at a time: the result is
// per-shard consistent, the right trade for a summary that is stale the
// moment it leaves anyway (Squid rebuilds hourly; our peers refresh on an
// interval).
func (s *Sharded) gatherOccupancy() (cachedigest.EnvelopeInfo, []*bitset.BitSet, error) {
	info := cachedigest.EnvelopeInfo{
		Family:        cachedigest.FamilyMurmurDouble,
		SourceVariant: byte(s.variant),
		Seed:          s.seed,
		Shards:        len(s.shards),
		ShardBits:     s.mShard,
		K:             s.k,
	}
	if len(s.shards) > 1 {
		// Single-shard filters route everything to shard 0; the key is only
		// needed — and only published — when there is a choice to reproduce.
		copy(info.RouteKey[:], s.cfg.RouteKey)
	}
	bits := make([]*bitset.BitSet, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		src, ok := sh.backend.(digestSource)
		if !ok {
			sh.mu.RUnlock()
			return info, nil, fmt.Errorf("service: %v backend of shard %d cannot export a digest", s.variant, i)
		}
		bits[i] = src.OccupancyBits()
		info.Generation += sh.muts
		info.Count += sh.backend.Count()
		sh.mu.RUnlock()
	}
	return info, bits, nil
}

// DigestEnvelope serializes the store's occupancy into a cache-digest
// envelope (see package cachedigest for the byte layout) and returns it with
// the generation it captures. Works on any variant with the digestSource
// capability — a counting filter's digest is its non-zero mask, 1 bit per
// position regardless of counter width, so a digest is never larger than
// the filter and usually far smaller than its snapshot.
func (s *Sharded) DigestEnvelope() ([]byte, uint64, error) {
	if s.mode == ModeHardened {
		return nil, 0, ErrDigestUnexportable
	}
	info, bits, err := s.gatherOccupancy()
	if err != nil {
		return nil, 0, err
	}
	env, err := cachedigest.EncodeEnvelope(info, bits)
	if err != nil {
		return nil, 0, err
	}
	return env, info.Generation, nil
}

// digestBaseline is the occupancy snapshot of the last digest served to a
// delta-capable peer, retained so the next exchange can ship only the words
// that changed since. One baseline per store: the common mesh has one
// downstream per filter per node, and a second delta-capable peer whose ACK
// doesn't match the baseline simply falls back to a full envelope.
type digestBaseline struct {
	etag  string
	gen   uint64
	words [][]uint64 // per shard, the backing words of the served digest
}

// DigestExchange is DigestEnvelope's mesh-aware sibling: haveETag is the
// digest ETag the peer says it holds (its last ACK) and deltaCapable is
// whether it can apply a delta frame. When the ACK matches the retained
// baseline the exchange ships only the changed words (isDelta true); any
// mismatch — first exchange, generation gap, restart, a different peer's
// ACK — falls back to the full envelope. Correctness never depends on the
// baseline: a delta is only ever diffed against content the peer proved it
// holds by echoing the exact ETag it was served.
func (s *Sharded) DigestExchange(haveETag string, deltaCapable bool) (blob []byte, etag string, gen uint64, isDelta bool, err error) {
	if s.mode == ModeHardened {
		return nil, "", 0, false, ErrDigestUnexportable
	}
	if !deltaCapable {
		blob, gen, err = s.DigestEnvelope()
		if err != nil {
			return nil, "", 0, false, err
		}
		return blob, s.DigestETag(gen), gen, false, nil
	}
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	info, bits, err := s.gatherOccupancy()
	if err != nil {
		return nil, "", 0, false, err
	}
	gen = info.Generation
	etag = s.DigestETag(gen)
	wordsPerShard := int((s.mShard + 63) / 64)
	words := make([][]uint64, len(bits))
	for i, bs := range bits {
		words[i] = make([]uint64, bs.Words())
		for j := range words[i] {
			words[i][j] = bs.Word(j)
		}
	}
	base := s.deltaBase
	if base != nil && haveETag != "" && base.etag == haveETag {
		var changed []cachedigest.DeltaWord
		for si := range words {
			for wi, w := range words[si] {
				if w != base.words[si][wi] {
					changed = append(changed, cachedigest.DeltaWord{
						Index: uint64(si)*uint64(wordsPerShard) + uint64(wi),
						Value: w,
					})
				}
			}
		}
		frame, derr := cachedigest.EncodeDelta(cachedigest.DeltaInfo{
			BaseGeneration: base.gen,
			NewGeneration:  gen,
			NewCount:       info.Count,
			TotalWords:     uint64(len(bits)) * uint64(wordsPerShard),
		}, changed)
		if derr == nil {
			s.deltaBase = &digestBaseline{etag: etag, gen: gen, words: words}
			return frame, etag, gen, true, nil
		}
		// An unencodable delta (should not happen) degrades to a full
		// envelope rather than failing the exchange.
	}
	blob, err = cachedigest.EncodeEnvelope(info, bits)
	if err != nil {
		return nil, "", 0, false, err
	}
	s.deltaBase = &digestBaseline{etag: etag, gen: gen, words: words}
	return blob, etag, gen, false, nil
}
