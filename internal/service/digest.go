package service

import (
	"errors"
	"fmt"

	"evilbloom/internal/bitset"
	"evilbloom/internal/cachedigest"
)

// ErrDigestUnexportable answers digest requests against a hardened filter:
// a digest is only useful to a peer that can reproduce the index mapping,
// and a hardened filter's keyed family never leaves the server. Exporting
// the bare bits would hand out an envelope no honest peer can evaluate —
// and a dishonest one could still mine for occupancy statistics — so the
// request is refused outright.
var ErrDigestUnexportable = errors.New(
	"service: hardened filters export no digest: the keyed index family never travels (use a naive filter for digest exchange)")

// DigestETag renders a store generation as the digest endpoint's entity
// tag. The store's per-boot salt is folded in because the generation
// counter resets on restart: without it, a restarted filter's generation
// would re-pass through values a peer already holds and earn a spurious
// 304 for different content.
func (s *Sharded) DigestETag(gen uint64) string {
	return fmt.Sprintf("%q", fmt.Sprintf("evb-digest-%x-%d", s.etagSalt, gen))
}

// DigestEnvelope serializes the store's occupancy into a cache-digest
// envelope (see package cachedigest for the byte layout) and returns it with
// the generation it captures. Works on any variant with the digestSource
// capability — a counting filter's digest is its non-zero mask, 1 bit per
// position regardless of counter width, so a digest is never larger than
// the filter and usually far smaller than its snapshot.
//
// Shards are read-locked one at a time: the result is per-shard consistent,
// the right trade for a summary that is stale the moment it leaves anyway
// (Squid rebuilds hourly; our peers refresh on an interval).
func (s *Sharded) DigestEnvelope() ([]byte, uint64, error) {
	if s.mode == ModeHardened {
		return nil, 0, ErrDigestUnexportable
	}
	info := cachedigest.EnvelopeInfo{
		Family:        cachedigest.FamilyMurmurDouble,
		SourceVariant: byte(s.variant),
		Seed:          s.seed,
		Shards:        len(s.shards),
		ShardBits:     s.mShard,
		K:             s.k,
	}
	if len(s.shards) > 1 {
		// Single-shard filters route everything to shard 0; the key is only
		// needed — and only published — when there is a choice to reproduce.
		copy(info.RouteKey[:], s.cfg.RouteKey)
	}
	bits := make([]*bitset.BitSet, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		src, ok := sh.backend.(digestSource)
		if !ok {
			sh.mu.RUnlock()
			return nil, 0, fmt.Errorf("service: %v backend of shard %d cannot export a digest", s.variant, i)
		}
		bits[i] = src.OccupancyBits()
		info.Generation += sh.muts
		info.Count += sh.backend.Count()
		sh.mu.RUnlock()
	}
	env, err := cachedigest.EncodeEnvelope(info, bits)
	if err != nil {
		return nil, 0, err
	}
	return env, info.Generation, nil
}
