package service

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"evilbloom/internal/cachedigest"
)

// Peer subsystem: the §7 cache-digest exchange between evilbloom nodes.
//
// Squid siblings periodically ship each other Bloom-filter summaries of
// their caches and use them to decide where to route a miss. Here every
// filter in a registry can take part: a node configured with peer URLs runs
// one refresh loop per local filter, fetching each peer's same-named
// filter's digest (GET /v2/filters/{name}/digest) on a jittered interval
// with an ETag/generation short-circuit, and answers routing queries
// (POST /v2/filters/{name}/route) from the digests it holds. Digests can
// also be pushed (POST .../digest?peer=...) for meshes where only one side
// can dial.
//
// The exchange crosses a trust boundary, and that is the point of serving
// it: a peer's digest is taken at face value, so an adversary who pollutes
// one node's filter (§4.1) poisons every sibling's routing — the §7 attack,
// run live by attack.RemoteDigestPollution. The digests themselves are
// integrity-checked (CRC, size-bounded before buffering) so a corrupt peer
// can waste round trips but not crash the receiver.

// Peer-exchange defaults; PeerConfig fields override them.
const (
	// DefaultPeerRefresh is the digest refresh interval (Squid rebuilds
	// hourly; a serving deployment wants staleness bounded in seconds).
	DefaultPeerRefresh = 15 * time.Second
	// DefaultPeerJitter is the refresh jitter fraction: each sleep is drawn
	// from Refresh × [1−j, 1+j] so a mesh's fetches do not synchronize.
	DefaultPeerJitter = 0.2
	// staleFactor × Refresh with no successful update marks a digest stale.
	staleFactor = 3
	// MaxPushedPeers caps how many pushed digests one filter retains. Push
	// is an unauthenticated endpoint, so like filter creation it must not
	// let a stranger grow server memory without bound.
	MaxPushedPeers = 64
	// MaxPushedDigestBits caps the total digest bits retained across one
	// filter's pushed peers (2^30 bits = 128 MiB), reserved from the
	// envelope's 88-byte header BEFORE the payload is buffered — the same
	// header-first discipline as create-from-snapshot.
	MaxPushedDigestBits = uint64(1) << 30
)

// ErrNoPeers answers refresh requests on a registry with no configured peer
// URLs — a no-op refresh would read as a healthy exchange that isn't there.
var ErrNoPeers = errors.New("service: no peers configured (start the server with -peer)")

// ErrPushedDigestLimit answers digest pushes beyond MaxPushedPeers labels
// or MaxPushedDigestBits of retained digest storage per filter.
var ErrPushedDigestLimit = errors.New("service: pushed-digest budget exhausted; delete the filter or push smaller digests")

// Mesh exchange headers. The fetch side advertises its identity and delta
// capability; the serve side names who sealed the frame and what kind of
// frame it is. All optional: a bare PR 4 exchange uses none of them.
const (
	// HeaderPeerToken carries the fetching node's own mesh credential
	// ("name:secret"), the GET-side mirror of the push principal.
	HeaderPeerToken = "X-Evilbloom-Peer-Token"
	// HeaderPeer names the peer whose credential sealed a digest response;
	// absent on unsealed responses.
	HeaderPeer = "X-Evilbloom-Peer"
	// HeaderDigestDelta ("1") advertises that the fetcher can apply delta
	// frames.
	HeaderDigestDelta = "X-Evilbloom-Digest-Delta"
	// HeaderDigestHave echoes the digest ETag the fetcher currently holds —
	// its last ACK, the base a delta may be diffed against. Deliberately
	// distinct from If-None-Match: Have drives delta selection, never 304.
	HeaderDigestHave = "X-Evilbloom-Digest-Have"
	// HeaderDigestFrame reports what was served: "full" or "delta".
	HeaderDigestFrame = "X-Evilbloom-Digest-Frame"
)

// PeerConfig wires a registry into a digest-exchange mesh.
type PeerConfig struct {
	// Peers lists the mesh roster's base URLs (e.g. "http://10.0.0.2:8379").
	// Under the default pairs topology with no Self this is PR 4's "every
	// other node" list; under ring/hub it is the full roster including this
	// node, with Self naming which entry is ours.
	Peers []string
	// Topology picks which roster members this node fetches (default pairs).
	Topology Topology
	// Self is this node's own roster entry (required for ring and hub).
	Self string
	// RouteQuorum is how many sibling claims a route verdict needs before
	// answering "peer" (default 1, PR 4's first-claiming-peer rule).
	RouteQuorum int
	// Refresh is the fetch interval (DefaultPeerRefresh when zero).
	Refresh time.Duration
	// Jitter is the refresh jitter fraction in [0,1) (DefaultPeerJitter
	// when zero).
	Jitter float64
	// StaleAfter marks a peer digest stale when no successful update
	// happened within it (staleFactor × Refresh when zero).
	StaleAfter time.Duration
	// Client performs the fetches (a 5-second-timeout client when nil).
	Client *http.Client
}

// Peers manages every filter's sibling digests: one refresh loop per local
// filter (started when the filter is created, stopped when it is deleted),
// plus push-imported digests. A zero-URL Peers runs no loops but still
// accepts pushes, so the route endpoint works on every registry.
type Peers struct {
	mu         sync.Mutex
	urls       []string // resolved fetch targets, not the full roster
	refresh    time.Duration
	jitter     float64
	staleAfter time.Duration
	client     *http.Client
	watches    map[string]*peerWatch
	closed     bool

	// quorum is the route verdict threshold (atomic-free: written under mu
	// at configure time or via SetRouteQuorum before traffic, read under mu).
	quorum int

	// authority, when set, supplies mesh credentials: the token to present
	// on fetches, MAC verification for sealed frames, and the live
	// revocation check. Guarded by authMu; nil means an unauthenticated
	// mesh (the PR 4 exchange).
	authMu    sync.RWMutex
	authority PeerAuthority
}

// SetAuthority installs the engine-side credential store. Called once at
// startup, before the mesh serves traffic.
func (p *Peers) SetAuthority(a PeerAuthority) {
	p.authMu.Lock()
	p.authority = a
	p.authMu.Unlock()
}

func (p *Peers) getAuthority() PeerAuthority {
	p.authMu.RLock()
	defer p.authMu.RUnlock()
	return p.authority
}

// SetRouteQuorum sets the route verdict threshold independently of
// configure — a node with no fetch targets (push-only mesh membership)
// still votes with a quorum.
func (p *Peers) SetRouteQuorum(q int) error {
	if q < 1 {
		return fmt.Errorf("service: route quorum %d, want ≥ 1", q)
	}
	p.mu.Lock()
	p.quorum = q
	p.mu.Unlock()
	return nil
}

// Quorum returns the route verdict threshold (at least 1).
func (p *Peers) Quorum() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.quorum < 1 {
		return 1
	}
	return p.quorum
}

// peerWatch is one local filter's view of the mesh.
type peerWatch struct {
	name string
	stop chan struct{} // closed by unwatch; nil when no loop runs
	done chan struct{} // closed by the loop on exit

	mu      sync.RWMutex
	fetched []*peerDigest          // one per configured URL, fixed order
	pushed  map[string]*peerDigest // push-imported, keyed by label
	// pushedBits charges retained pushed digests (plus in-flight push
	// reservations) against MaxPushedDigestBits.
	pushedBits uint64
}

// peerDigest is the per-peer state the ISSUE calls staleness and failure
// accounting: the last good digest plus everything needed to judge it.
type peerDigest struct {
	peer   string // base URL (fetched) or label (pushed)
	pushed bool

	digest      *cachedigest.PeerDigest // nil until the first good exchange
	etag        string
	sealedBy    string // peer name whose credential sealed the held digest
	fetches     uint64 // completed GETs answered 200
	notModified uint64 // GETs short-circuited by If-None-Match (304)
	deltaCount  uint64 // 200s answered with a delta frame instead of a full envelope
	bytesIn     uint64 // digest frame bytes received across all 200s (MAC trailer included)
	failures    uint64 // transport errors and non-200/304 answers
	consecutive uint64 // failures since the last success
	lastErr     string
	lastUpdate  time.Time // last 200, 304 or push
}

// newPeers builds an unconfigured subsystem (pushes work, no loops run).
func newPeers() *Peers {
	return &Peers{
		refresh:    DefaultPeerRefresh,
		jitter:     DefaultPeerJitter,
		staleAfter: staleFactor * DefaultPeerRefresh,
		client:     &http.Client{Timeout: 5 * time.Second},
		watches:    make(map[string]*peerWatch),
	}
}

// configure installs the mesh configuration and starts refresh loops for
// every filter already watched. It is one-shot: reconfiguring a live mesh
// would have to restart every loop for little operational value.
func (p *Peers) configure(cfg PeerConfig) error {
	for _, raw := range cfg.Peers {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("service: peer URL %q is not an absolute http(s) URL", raw)
		}
	}
	if cfg.Refresh < 0 || cfg.Jitter < 0 || cfg.Jitter >= 1 || cfg.StaleAfter < 0 {
		return fmt.Errorf("service: invalid peer config (refresh=%v jitter=%v stale=%v)",
			cfg.Refresh, cfg.Jitter, cfg.StaleAfter)
	}
	if cfg.RouteQuorum < 0 {
		return fmt.Errorf("service: route quorum %d, want ≥ 1", cfg.RouteQuorum)
	}
	topo := cfg.Topology
	if topo == "" {
		topo = TopologyPairs
	}
	if len(cfg.Peers) == 0 {
		return ErrNoPeers
	}
	targets, err := resolveTargets(cfg.Peers, topo, cfg.Self)
	if err != nil {
		return err
	}
	if len(targets) == 0 {
		return fmt.Errorf("%w: the roster resolves to no fetch targets under %s topology", ErrNoPeers, topo)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("service: peer subsystem closed")
	}
	if len(p.urls) > 0 {
		return errors.New("service: peers already configured")
	}
	if cfg.RouteQuorum > 0 {
		p.quorum = cfg.RouteQuorum
	}
	p.urls = targets
	if cfg.Refresh > 0 {
		p.refresh = cfg.Refresh
	}
	if cfg.Jitter > 0 {
		p.jitter = cfg.Jitter
	}
	p.staleAfter = cfg.StaleAfter
	if p.staleAfter == 0 {
		p.staleAfter = staleFactor * p.refresh
	}
	if cfg.Client != nil {
		p.client = cfg.Client
	}
	for _, w := range p.watches {
		p.startLocked(w)
	}
	return nil
}

// watch registers a local filter with the mesh, starting its refresh loop
// when peer URLs are configured. Idempotent.
func (p *Peers) watch(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.watches[name] != nil {
		return
	}
	w := &peerWatch{name: name, pushed: make(map[string]*peerDigest)}
	p.watches[name] = w
	p.startLocked(w)
}

// startLocked provisions w's per-peer state and starts its refresh loop.
// The caller holds p.mu.
func (p *Peers) startLocked(w *peerWatch) {
	if len(p.urls) == 0 || w.stop != nil {
		return
	}
	w.fetched = make([]*peerDigest, len(p.urls))
	for i, u := range p.urls {
		w.fetched[i] = &peerDigest{peer: u}
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go p.refreshLoop(w)
}

// unwatch stops a filter's refresh loop and waits for it to exit — the
// Delete path's leak guarantee: when Delete returns, no goroutine still
// works for the filter.
func (p *Peers) unwatch(name string) {
	p.mu.Lock()
	w := p.watches[name]
	delete(p.watches, name)
	p.mu.Unlock()
	if w == nil || w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
}

// Close stops every refresh loop and refuses further watches. Idempotent.
func (p *Peers) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	watches := make([]*peerWatch, 0, len(p.watches))
	for _, w := range p.watches {
		watches = append(watches, w)
	}
	p.watches = make(map[string]*peerWatch)
	p.mu.Unlock()
	for _, w := range watches {
		if w.stop != nil {
			close(w.stop)
			<-w.done
		}
	}
}

// refreshLoop fetches w's peers immediately (a fresh filter should learn
// the mesh without waiting a full interval), then on the jittered interval
// until stopped.
func (p *Peers) refreshLoop(w *peerWatch) {
	defer close(w.done)
	p.fetchAll(w)
	for {
		t := time.NewTimer(p.jittered())
		select {
		case <-w.stop:
			t.Stop()
			return
		case <-t.C:
			p.fetchAll(w)
		}
	}
}

// jittered draws one refresh sleep from Refresh × [1−j, 1+j].
func (p *Peers) jittered() time.Duration {
	j := 1 + p.jitter*(2*rand.Float64()-1) //nolint:gosec // scheduling jitter, not crypto
	return time.Duration(float64(p.refresh) * j)
}

// fetchAll refreshes every configured peer of one filter sequentially (peer
// sets are small; a slow peer delaying its siblings' refresh by its timeout
// is acceptable, a goroutine per peer per filter is not).
func (p *Peers) fetchAll(w *peerWatch) {
	for _, st := range w.fetched {
		p.fetchOne(w, st)
	}
}

// fetchOne performs one conditional digest GET against a peer and folds the
// outcome into its accounting. A generation-gap delta — the peer diffed
// against a base this node does not hold — retries once as a plain full
// fetch, so a gap costs one extra round trip, never a stale digest.
func (p *Peers) fetchOne(w *peerWatch, st *peerDigest) {
	if err := p.exchangeOne(w, st, true); errors.Is(err, cachedigest.ErrDeltaGap) {
		p.exchangeOne(w, st, false) //nolint:errcheck // outcome is folded into st's accounting
	}
}

// exchangeOne runs one digest GET. allowDelta advertises delta capability
// and the held digest's ETag; fetchOne retries without it on a generation
// gap. The returned error mirrors what record folded into accounting.
func (p *Peers) exchangeOne(w *peerWatch, st *peerDigest, allowDelta bool) error {
	w.mu.RLock()
	etag := st.etag
	held := st.digest
	w.mu.RUnlock()

	req, err := http.NewRequest(http.MethodGet, st.peer+"/v2/filters/"+url.PathEscape(w.name)+"/digest", nil)
	if err != nil {
		return p.record(w, st, fetchResult{err: err})
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	auth := p.getAuthority()
	sealedMesh := false
	if auth != nil {
		if tok, ok := auth.SelfToken(); ok {
			sealedMesh = true
			req.Header.Set(HeaderPeerToken, tok)
		}
	}
	if allowDelta {
		req.Header.Set(HeaderDigestDelta, "1")
		if etag != "" && held != nil {
			req.Header.Set(HeaderDigestHave, etag)
		}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return p.record(w, st, fetchResult{err: err})
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		w.mu.Lock()
		st.notModified++
		st.consecutive = 0
		st.lastErr = ""
		st.lastUpdate = time.Now()
		w.mu.Unlock()
		return nil
	case http.StatusOK:
		res := readDigestResponse(resp, held, sealedMesh, auth)
		if res.err != nil {
			// A decode failure can leave unread payload behind; drain it
			// (bounded) so the keep-alive connection survives the error.
			drainBody(resp.Body)
		}
		return p.record(w, st, res)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		// Drain the (bounded) remainder before the deferred Close: a body
		// closed with bytes still unread discards the whole keep-alive
		// connection, so a flapping peer answering long errors would force
		// a fresh TCP(+TLS) dial on every refresh tick.
		drainBody(resp.Body)
		return p.record(w, st, fetchResult{err: fmt.Errorf("peer answered %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))})
	}
}

// fetchResult is one 200-exchange's outcome, handed to record.
type fetchResult struct {
	digest   *cachedigest.PeerDigest
	etag     string
	sealedBy string
	bytes    uint64
	delta    bool
	err      error
}

// readDigestResponse buffers, authenticates and decodes a 200 digest
// response. In a sealed mesh (this node presented its credential) an
// unsealed answer is refused outright — a downgrade must read as a failure,
// not quietly import unauthenticated bits. held is the digest a delta would
// be applied to.
func readDigestResponse(resp *http.Response, held *cachedigest.PeerDigest, sealedMesh bool, auth PeerAuthority) fetchResult {
	sealer := resp.Header.Get(HeaderPeer)
	sealed := sealer != ""
	if sealedMesh && !sealed {
		return fetchResult{err: errors.New("authenticated mesh, but the peer answered an unsealed digest")}
	}
	if sealed && auth == nil {
		return fetchResult{err: fmt.Errorf("peer sealed its digest as %q, but this node holds no mesh credentials", sealer)}
	}
	frame, n, err := readFrame(resp.Body, sealed)
	if err != nil {
		return fetchResult{err: err}
	}
	if sealed {
		if frame, err = auth.Unseal(sealer, frame); err != nil {
			return fetchResult{err: err}
		}
	}
	res := fetchResult{etag: resp.Header.Get("ETag"), sealedBy: sealer, bytes: n}
	if cachedigest.IsDeltaFrame(frame) {
		if held == nil {
			res.err = fmt.Errorf("%w: delta answered with no digest held", cachedigest.ErrDeltaGap)
			return res
		}
		//lint:allow atomicpublish writes land in a freshly decoded digest copy, never in a published store
		d, err := held.ApplyDelta(frame)
		if err != nil {
			res.err = err
			return res
		}
		res.digest, res.delta = d, true
		return res
	}
	//lint:allow atomicpublish writes land in a freshly decoded digest, never in a published store
	d, err := cachedigest.OpenEnvelope(frame)
	if err != nil {
		res.err = err
		return res
	}
	res.digest = d
	return res
}

// maxErrorDrain bounds how much of a failed exchange's body is read to
// rescue the connection; past it, dropping the connection is cheaper than
// downloading a peer's endless error.
const maxErrorDrain = 64 << 10

// drainBody consumes at most maxErrorDrain of rd so the transport can
// return the connection to its idle pool.
func drainBody(rd io.Reader) {
	io.Copy(io.Discard, io.LimitReader(rd, maxErrorDrain)) //nolint:errcheck // best-effort connection rescue
}

// record folds a completed (non-304) exchange into a peer's accounting and
// returns the exchange's effective error. For sealed exchanges the
// authority's Authorized check is re-run here, INSIDE w.mu, at the moment
// the digest would land: Evict scrubs under the same lock after the
// credential is removed, so a peer revoked mid-fetch either fails this
// check or is scrubbed right after storing — its in-flight digest never
// outlives the revocation.
func (p *Peers) record(w *peerWatch, st *peerDigest, res fetchResult) error {
	auth := p.getAuthority()
	w.mu.Lock()
	defer w.mu.Unlock()
	st.bytesIn += res.bytes
	if res.err == nil && res.sealedBy != "" && auth != nil && !auth.Authorized(res.sealedBy) {
		res.err = fmt.Errorf("peer %q's mesh credential was revoked mid-exchange", res.sealedBy)
	}
	if res.err != nil {
		st.failures++
		st.consecutive++
		st.lastErr = res.err.Error()
		return res.err // the last good digest keeps serving, flagged stale by age
	}
	st.fetches++
	if res.delta {
		st.deltaCount++
	}
	st.consecutive = 0
	st.lastErr = ""
	st.digest = res.digest
	st.etag = res.etag
	st.sealedBy = res.sealedBy
	st.lastUpdate = time.Now()
	return nil
}

// readFrame buffers one digest frame — full envelope or delta — from rd,
// size-checking from the fixed header before trusting the body's claimed
// length, plus the MAC trailer when the exchange is sealed. It returns the
// frame (trailer included) and the byte count read.
func readFrame(rd io.Reader, sealed bool) ([]byte, uint64, error) {
	// The delta header (48 bytes) is a prefix-length below the envelope's
	// 88; read the short prefix, sniff the magic, then extend as needed.
	hdr := make([]byte, cachedigest.EnvelopeHeaderLen)
	if _, err := io.ReadFull(rd, hdr[:cachedigest.DeltaHeaderLen]); err != nil {
		return nil, 0, fmt.Errorf("%w: reading header: %v", cachedigest.ErrEnvelopeCorrupt, err)
	}
	var size int
	if cachedigest.IsDeltaFrame(hdr) {
		info, err := cachedigest.DecodeDeltaInfo(hdr[:cachedigest.DeltaHeaderLen])
		if err != nil {
			return nil, 0, err
		}
		size = cachedigest.DeltaSize(info)
		hdr = hdr[:cachedigest.DeltaHeaderLen]
	} else {
		if _, err := io.ReadFull(rd, hdr[cachedigest.DeltaHeaderLen:]); err != nil {
			return nil, 0, fmt.Errorf("%w: reading header: %v", cachedigest.ErrEnvelopeCorrupt, err)
		}
		info, err := cachedigest.DecodeEnvelopeInfo(hdr)
		if err != nil {
			return nil, 0, err
		}
		size = info.EnvelopeSize()
	}
	if sealed {
		size += cachedigest.MACTrailerLen
	}
	frame := make([]byte, size)
	copy(frame, hdr)
	if _, err := io.ReadFull(rd, frame[len(hdr):]); err != nil {
		return nil, 0, fmt.Errorf("%w: reading payload: %v", cachedigest.ErrEnvelopeCorrupt, err)
	}
	if n, _ := io.ReadFull(rd, make([]byte, 1)); n != 0 {
		return nil, 0, fmt.Errorf("%w: trailing bytes after digest frame", cachedigest.ErrEnvelopeCorrupt)
	}
	return frame, uint64(size), nil
}

// RefreshNow synchronously refreshes every configured peer of one filter —
// the POST .../peers/refresh handler, and what deterministic tests and the
// smoke script use instead of waiting out the interval. It returns the
// post-refresh status.
func (p *Peers) RefreshNow(name string) ([]PeerStatus, error) {
	p.mu.Lock()
	w := p.watches[name]
	urls := len(p.urls)
	p.mu.Unlock()
	if w == nil {
		return nil, fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	if urls == 0 {
		return nil, ErrNoPeers
	}
	p.fetchAll(w)
	return p.Status(name)
}

// Push imports a digest envelope under a peer label — the push half of the
// gossip, for peers that cannot be dialed back. It follows the registry's
// header-first discipline: the digest's size is read from the 88-byte
// header and reserved against the per-filter MaxPushedPeers /
// MaxPushedDigestBits budget BEFORE the payload is buffered, and the
// reservation is filled or rolled back — a pusher cannot make the node
// hold more digest bytes than the budget it was granted.
//
// sealer is the authenticated mesh principal behind the push ("" on an
// unauthenticated mesh; the engine enforces that an authenticated mesh
// never passes ""), retained for attribution and scrubbed by Evict. When
// sealed is true the body carries a MAC trailer keyed by sealer's
// credential and is verified before the envelope is opened.
func (p *Peers) Push(name, label string, rd io.Reader, sealer string, sealed bool) (PeerStatus, error) {
	// Labels are retained as map keys and echoed through the peers JSON, so
	// they follow the filter-name rule (bounded length, no control or
	// separator characters). The HTTP layer rejects bad labels with 400
	// before reaching here; this guards direct callers.
	if !ValidFilterName(label) {
		return PeerStatus{}, fmt.Errorf("service: invalid peer label %q (want %s)", label, filterName)
	}
	p.mu.Lock()
	w := p.watches[name]
	p.mu.Unlock()
	if w == nil {
		return PeerStatus{}, fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	hdr := make([]byte, cachedigest.EnvelopeHeaderLen)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return PeerStatus{}, fmt.Errorf("%w: reading header: %v", cachedigest.ErrEnvelopeCorrupt, err)
	}
	info, err := cachedigest.DecodeEnvelopeInfo(hdr)
	if err != nil {
		return PeerStatus{}, err
	}
	bits := uint64(info.Shards) * info.ShardBits
	if err := w.reservePush(label, bits); err != nil {
		return PeerStatus{}, err
	}
	size := info.EnvelopeSize()
	if sealed {
		size += cachedigest.MACTrailerLen
	}
	env := make([]byte, size)
	copy(env, hdr)
	auth := p.getAuthority()
	var d *cachedigest.PeerDigest
	if _, err = io.ReadFull(rd, env[len(hdr):]); err != nil {
		err = fmt.Errorf("%w: reading payload: %v", cachedigest.ErrEnvelopeCorrupt, err)
	} else {
		frame := env
		if sealed {
			if auth == nil {
				err = fmt.Errorf("%w: sealed push, but this node holds no mesh credentials", cachedigest.ErrEnvelopeUnauthenticated)
			} else {
				frame, err = auth.Unseal(sealer, env)
			}
		}
		if err == nil {
			//lint:allow atomicpublish writes land in a freshly decoded digest, never in a published store
			d, err = cachedigest.OpenEnvelope(frame)
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// Same revoked-mid-flight discipline as record: the principal must
	// still be authorized at the moment the digest lands.
	if err == nil && sealer != "" && auth != nil && !auth.Authorized(sealer) {
		err = fmt.Errorf("peer %q's mesh credential was revoked mid-push", sealer)
	}
	if err != nil {
		w.pushedBits -= bits // roll the reservation back
		return PeerStatus{}, err
	}
	st := w.pushed[label]
	if st == nil {
		st = &peerDigest{peer: label, pushed: true}
		w.pushed[label] = st
	}
	if st.digest != nil {
		w.pushedBits -= st.digest.Bits() // the replaced digest's charge
	}
	st.fetches++
	st.consecutive = 0
	st.lastErr = ""
	st.digest = d
	st.sealedBy = sealer
	st.lastUpdate = time.Now()
	return p.statusOf(st), nil
}

// Evict scrubs every digest attributed to the named peer principal across
// all filters — the teeth behind credential revocation. Fetched entries
// lose their digest (the refresh loop keeps polling and keeps failing
// while the peer's frames verify against a revoked credential); pushed
// entries are dropped entirely and their budget charge released. Returns
// how many digests were scrubbed.
func (p *Peers) Evict(peer string) int {
	p.mu.Lock()
	watches := make([]*peerWatch, 0, len(p.watches))
	for _, w := range p.watches {
		watches = append(watches, w)
	}
	p.mu.Unlock()
	evicted := 0
	for _, w := range watches {
		w.mu.Lock()
		for _, st := range w.fetched {
			if st.sealedBy == peer && st.digest != nil {
				st.digest = nil
				st.etag = ""
				st.sealedBy = ""
				st.lastErr = "peer credential revoked"
				evicted++
			}
		}
		for label, st := range w.pushed {
			if st.sealedBy == peer {
				if st.digest != nil {
					w.pushedBits -= st.digest.Bits()
					evicted++
				}
				delete(w.pushed, label)
			}
		}
		w.mu.Unlock()
	}
	return evicted
}

// reservePush charges bits of pushed-digest budget for label before any
// payload is buffered. A replacement's old charge is credited in the check
// (and released when the new digest is actually stored), so updating a
// label never deadlocks against a full budget; under racing replacements
// of one label the retained total stays exact and only the transient
// in-flight sum can briefly overshoot.
func (w *peerWatch) reservePush(label string, bits uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	prev := w.pushed[label]
	if prev == nil && len(w.pushed) >= MaxPushedPeers {
		return fmt.Errorf("%w: filter already retains %d pushed digests", ErrPushedDigestLimit, len(w.pushed))
	}
	var prevBits uint64
	if prev != nil && prev.digest != nil {
		prevBits = prev.digest.Bits()
	}
	if bits > MaxPushedDigestBits || w.pushedBits-prevBits > MaxPushedDigestBits-bits {
		return fmt.Errorf("%w: %d digest bits pushed, %d of %d retained",
			ErrPushedDigestLimit, bits, w.pushedBits, MaxPushedDigestBits)
	}
	w.pushedBits += bits
	return nil
}

// PeerStatus is one peer's accounting as served on GET .../peers.
type PeerStatus struct {
	// Peer is the sibling's base URL (fetched) or push label.
	Peer string `json:"peer"`
	// Source is "fetched" for refresh-loop peers, "pushed" for imports.
	Source string `json:"source"`
	// HasDigest reports whether a usable digest is held.
	HasDigest bool `json:"has_digest"`
	// Generation, DigestBits and DigestWeight describe the held digest.
	Generation   uint64 `json:"generation,omitempty"`
	DigestBits   uint64 `json:"digest_bits,omitempty"`
	DigestWeight uint64 `json:"digest_weight,omitempty"`
	// AgeSeconds is the time since the last successful update (200, 304 or
	// push); Stale reports whether it exceeds the staleness bound.
	AgeSeconds float64 `json:"age_seconds,omitempty"`
	Stale      bool    `json:"stale,omitempty"`
	// Fetches, NotModified and Failures count completed exchanges;
	// ConsecutiveFailures counts failures since the last success.
	Fetches             uint64 `json:"fetches,omitempty"`
	NotModified         uint64 `json:"not_modified,omitempty"`
	Failures            uint64 `json:"failures,omitempty"`
	ConsecutiveFailures uint64 `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	// SealedBy names the mesh principal whose credential authenticated the
	// held digest ("" on an unauthenticated exchange).
	SealedBy string `json:"sealed_by,omitempty"`
	// DeltaFetches counts 200s answered with a delta frame instead of a
	// full envelope; BytesFetched totals digest frame bytes received — the
	// pair that makes the delta bandwidth saving observable.
	DeltaFetches uint64 `json:"delta_fetches,omitempty"`
	BytesFetched uint64 `json:"bytes_fetched,omitempty"`
}

// statusOf snapshots one peer's accounting. The caller holds w.mu.
func (p *Peers) statusOf(st *peerDigest) PeerStatus {
	out := PeerStatus{
		Peer:                st.peer,
		Source:              "fetched",
		HasDigest:           st.digest != nil,
		Fetches:             st.fetches,
		NotModified:         st.notModified,
		Failures:            st.failures,
		ConsecutiveFailures: st.consecutive,
		LastError:           st.lastErr,
		SealedBy:            st.sealedBy,
		DeltaFetches:        st.deltaCount,
		BytesFetched:        st.bytesIn,
	}
	if st.pushed {
		out.Source = "pushed"
	}
	if st.digest != nil {
		out.Generation = st.digest.Generation()
		out.DigestBits = st.digest.Bits()
		out.DigestWeight = st.digest.Weight()
	}
	if !st.lastUpdate.IsZero() {
		age := time.Since(st.lastUpdate)
		out.AgeSeconds = age.Seconds()
		out.Stale = age > p.staleAfter
	}
	return out
}

// Status snapshots every peer of one filter: configured peers in their
// configured order, then pushed peers sorted by label.
func (p *Peers) Status(name string) ([]PeerStatus, error) {
	p.mu.Lock()
	w := p.watches[name]
	p.mu.Unlock()
	if w == nil {
		return nil, fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]PeerStatus, 0, len(w.fetched)+len(w.pushed))
	for _, st := range w.fetched {
		out = append(out, p.statusOf(st))
	}
	labels := make([]string, 0, len(w.pushed))
	for l := range w.pushed {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		out = append(out, p.statusOf(w.pushed[l]))
	}
	return out, nil
}

// PeerClaim is one peer's answer inside a routing verdict.
type PeerClaim struct {
	// Peer names the sibling (URL or push label).
	Peer string `json:"peer"`
	// Claims reports whether the sibling's digest contains the item.
	Claims bool `json:"claims"`
	// Generation is the claimed digest's generation.
	Generation uint64 `json:"generation,omitempty"`
	// AgeSeconds and Stale qualify how current the digest is; Squid-style
	// routing uses stale digests until replaced, so a claim from a stale
	// digest still routes — flagged, so the caller can decide otherwise.
	AgeSeconds float64 `json:"age_seconds,omitempty"`
	Stale      bool    `json:"stale,omitempty"`
}

// Claims answers one item against every held digest of one filter, in
// status order. Peers holding no digest claim nothing.
func (p *Peers) Claims(name string, item []byte) []PeerClaim {
	p.mu.Lock()
	w := p.watches[name]
	p.mu.Unlock()
	if w == nil {
		return nil
	}
	w.mu.RLock()
	states := make([]*peerDigest, 0, len(w.fetched)+len(w.pushed))
	states = append(states, w.fetched...)
	labels := make([]string, 0, len(w.pushed))
	for l := range w.pushed {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		states = append(states, w.pushed[l])
	}
	type held struct {
		claim  PeerClaim
		digest *cachedigest.PeerDigest
	}
	snapshot := make([]held, len(states))
	for i, st := range states {
		h := held{digest: st.digest, claim: PeerClaim{Peer: st.peer}}
		if st.digest != nil {
			h.claim.Generation = st.digest.Generation()
		}
		if !st.lastUpdate.IsZero() {
			age := time.Since(st.lastUpdate)
			h.claim.AgeSeconds = age.Seconds()
			h.claim.Stale = age > p.staleAfter
		}
		snapshot[i] = h
	}
	w.mu.RUnlock()
	// Digest evaluation happens outside the lock: PeerDigest is immutable
	// and concurrency-safe, and k hashes per peer need not serialize with
	// refresh bookkeeping.
	out := make([]PeerClaim, len(snapshot))
	for i, h := range snapshot {
		if h.digest != nil {
			h.claim.Claims = h.digest.Test(item)
		}
		out[i] = h.claim
	}
	return out
}
