package service

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"evilbloom/internal/cachedigest"
)

// Peer subsystem: the §7 cache-digest exchange between evilbloom nodes.
//
// Squid siblings periodically ship each other Bloom-filter summaries of
// their caches and use them to decide where to route a miss. Here every
// filter in a registry can take part: a node configured with peer URLs runs
// one refresh loop per local filter, fetching each peer's same-named
// filter's digest (GET /v2/filters/{name}/digest) on a jittered interval
// with an ETag/generation short-circuit, and answers routing queries
// (POST /v2/filters/{name}/route) from the digests it holds. Digests can
// also be pushed (POST .../digest?peer=...) for meshes where only one side
// can dial.
//
// The exchange crosses a trust boundary, and that is the point of serving
// it: a peer's digest is taken at face value, so an adversary who pollutes
// one node's filter (§4.1) poisons every sibling's routing — the §7 attack,
// run live by attack.RemoteDigestPollution. The digests themselves are
// integrity-checked (CRC, size-bounded before buffering) so a corrupt peer
// can waste round trips but not crash the receiver.

// Peer-exchange defaults; PeerConfig fields override them.
const (
	// DefaultPeerRefresh is the digest refresh interval (Squid rebuilds
	// hourly; a serving deployment wants staleness bounded in seconds).
	DefaultPeerRefresh = 15 * time.Second
	// DefaultPeerJitter is the refresh jitter fraction: each sleep is drawn
	// from Refresh × [1−j, 1+j] so a mesh's fetches do not synchronize.
	DefaultPeerJitter = 0.2
	// staleFactor × Refresh with no successful update marks a digest stale.
	staleFactor = 3
	// MaxPushedPeers caps how many pushed digests one filter retains. Push
	// is an unauthenticated endpoint, so like filter creation it must not
	// let a stranger grow server memory without bound.
	MaxPushedPeers = 64
	// MaxPushedDigestBits caps the total digest bits retained across one
	// filter's pushed peers (2^30 bits = 128 MiB), reserved from the
	// envelope's 88-byte header BEFORE the payload is buffered — the same
	// header-first discipline as create-from-snapshot.
	MaxPushedDigestBits = uint64(1) << 30
)

// ErrNoPeers answers refresh requests on a registry with no configured peer
// URLs — a no-op refresh would read as a healthy exchange that isn't there.
var ErrNoPeers = errors.New("service: no peers configured (start the server with -peer)")

// ErrPushedDigestLimit answers digest pushes beyond MaxPushedPeers labels
// or MaxPushedDigestBits of retained digest storage per filter.
var ErrPushedDigestLimit = errors.New("service: pushed-digest budget exhausted; delete the filter or push smaller digests")

// PeerConfig wires a registry into a digest-exchange mesh.
type PeerConfig struct {
	// Peers lists sibling base URLs (e.g. "http://10.0.0.2:8379"). Each
	// local filter fetches /v2/filters/{name}/digest from every peer.
	Peers []string
	// Refresh is the fetch interval (DefaultPeerRefresh when zero).
	Refresh time.Duration
	// Jitter is the refresh jitter fraction in [0,1) (DefaultPeerJitter
	// when zero).
	Jitter float64
	// StaleAfter marks a peer digest stale when no successful update
	// happened within it (staleFactor × Refresh when zero).
	StaleAfter time.Duration
	// Client performs the fetches (a 5-second-timeout client when nil).
	Client *http.Client
}

// Peers manages every filter's sibling digests: one refresh loop per local
// filter (started when the filter is created, stopped when it is deleted),
// plus push-imported digests. A zero-URL Peers runs no loops but still
// accepts pushes, so the route endpoint works on every registry.
type Peers struct {
	mu         sync.Mutex
	urls       []string
	refresh    time.Duration
	jitter     float64
	staleAfter time.Duration
	client     *http.Client
	watches    map[string]*peerWatch
	closed     bool
}

// peerWatch is one local filter's view of the mesh.
type peerWatch struct {
	name string
	stop chan struct{} // closed by unwatch; nil when no loop runs
	done chan struct{} // closed by the loop on exit

	mu      sync.RWMutex
	fetched []*peerDigest          // one per configured URL, fixed order
	pushed  map[string]*peerDigest // push-imported, keyed by label
	// pushedBits charges retained pushed digests (plus in-flight push
	// reservations) against MaxPushedDigestBits.
	pushedBits uint64
}

// peerDigest is the per-peer state the ISSUE calls staleness and failure
// accounting: the last good digest plus everything needed to judge it.
type peerDigest struct {
	peer   string // base URL (fetched) or label (pushed)
	pushed bool

	digest      *cachedigest.PeerDigest // nil until the first good exchange
	etag        string
	fetches     uint64 // completed GETs answered 200
	notModified uint64 // GETs short-circuited by If-None-Match (304)
	failures    uint64 // transport errors and non-200/304 answers
	consecutive uint64 // failures since the last success
	lastErr     string
	lastUpdate  time.Time // last 200, 304 or push
}

// newPeers builds an unconfigured subsystem (pushes work, no loops run).
func newPeers() *Peers {
	return &Peers{
		refresh:    DefaultPeerRefresh,
		jitter:     DefaultPeerJitter,
		staleAfter: staleFactor * DefaultPeerRefresh,
		client:     &http.Client{Timeout: 5 * time.Second},
		watches:    make(map[string]*peerWatch),
	}
}

// configure installs the mesh configuration and starts refresh loops for
// every filter already watched. It is one-shot: reconfiguring a live mesh
// would have to restart every loop for little operational value.
func (p *Peers) configure(cfg PeerConfig) error {
	for _, raw := range cfg.Peers {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("service: peer URL %q is not an absolute http(s) URL", raw)
		}
	}
	if cfg.Refresh < 0 || cfg.Jitter < 0 || cfg.Jitter >= 1 || cfg.StaleAfter < 0 {
		return fmt.Errorf("service: invalid peer config (refresh=%v jitter=%v stale=%v)",
			cfg.Refresh, cfg.Jitter, cfg.StaleAfter)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("service: peer subsystem closed")
	}
	if len(p.urls) > 0 {
		return errors.New("service: peers already configured")
	}
	if len(cfg.Peers) == 0 {
		return ErrNoPeers
	}
	p.urls = append([]string(nil), cfg.Peers...)
	if cfg.Refresh > 0 {
		p.refresh = cfg.Refresh
	}
	if cfg.Jitter > 0 {
		p.jitter = cfg.Jitter
	}
	p.staleAfter = cfg.StaleAfter
	if p.staleAfter == 0 {
		p.staleAfter = staleFactor * p.refresh
	}
	if cfg.Client != nil {
		p.client = cfg.Client
	}
	for _, w := range p.watches {
		p.startLocked(w)
	}
	return nil
}

// watch registers a local filter with the mesh, starting its refresh loop
// when peer URLs are configured. Idempotent.
func (p *Peers) watch(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.watches[name] != nil {
		return
	}
	w := &peerWatch{name: name, pushed: make(map[string]*peerDigest)}
	p.watches[name] = w
	p.startLocked(w)
}

// startLocked provisions w's per-peer state and starts its refresh loop.
// The caller holds p.mu.
func (p *Peers) startLocked(w *peerWatch) {
	if len(p.urls) == 0 || w.stop != nil {
		return
	}
	w.fetched = make([]*peerDigest, len(p.urls))
	for i, u := range p.urls {
		w.fetched[i] = &peerDigest{peer: u}
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go p.refreshLoop(w)
}

// unwatch stops a filter's refresh loop and waits for it to exit — the
// Delete path's leak guarantee: when Delete returns, no goroutine still
// works for the filter.
func (p *Peers) unwatch(name string) {
	p.mu.Lock()
	w := p.watches[name]
	delete(p.watches, name)
	p.mu.Unlock()
	if w == nil || w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
}

// Close stops every refresh loop and refuses further watches. Idempotent.
func (p *Peers) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	watches := make([]*peerWatch, 0, len(p.watches))
	for _, w := range p.watches {
		watches = append(watches, w)
	}
	p.watches = make(map[string]*peerWatch)
	p.mu.Unlock()
	for _, w := range watches {
		if w.stop != nil {
			close(w.stop)
			<-w.done
		}
	}
}

// refreshLoop fetches w's peers immediately (a fresh filter should learn
// the mesh without waiting a full interval), then on the jittered interval
// until stopped.
func (p *Peers) refreshLoop(w *peerWatch) {
	defer close(w.done)
	p.fetchAll(w)
	for {
		t := time.NewTimer(p.jittered())
		select {
		case <-w.stop:
			t.Stop()
			return
		case <-t.C:
			p.fetchAll(w)
		}
	}
}

// jittered draws one refresh sleep from Refresh × [1−j, 1+j].
func (p *Peers) jittered() time.Duration {
	j := 1 + p.jitter*(2*rand.Float64()-1) //nolint:gosec // scheduling jitter, not crypto
	return time.Duration(float64(p.refresh) * j)
}

// fetchAll refreshes every configured peer of one filter sequentially (peer
// sets are small; a slow peer delaying its siblings' refresh by its timeout
// is acceptable, a goroutine per peer per filter is not).
func (p *Peers) fetchAll(w *peerWatch) {
	for _, st := range w.fetched {
		p.fetchOne(w, st)
	}
}

// fetchOne performs one conditional digest GET against a peer and folds the
// outcome into its accounting.
func (p *Peers) fetchOne(w *peerWatch, st *peerDigest) {
	w.mu.RLock()
	etag := st.etag
	w.mu.RUnlock()

	req, err := http.NewRequest(http.MethodGet, st.peer+"/v2/filters/"+url.PathEscape(w.name)+"/digest", nil)
	if err != nil {
		p.record(w, st, nil, "", err)
		return
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.record(w, st, nil, "", err)
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		w.mu.Lock()
		st.notModified++
		st.consecutive = 0
		st.lastErr = ""
		st.lastUpdate = time.Now()
		w.mu.Unlock()
	case http.StatusOK:
		d, err := readEnvelope(resp.Body)
		if err != nil {
			// A decode failure can leave unread payload behind; drain it
			// (bounded) so the keep-alive connection survives the error.
			drainBody(resp.Body)
		}
		p.record(w, st, d, resp.Header.Get("ETag"), err)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		// Drain the (bounded) remainder before the deferred Close: a body
		// closed with bytes still unread discards the whole keep-alive
		// connection, so a flapping peer answering long errors would force
		// a fresh TCP(+TLS) dial on every refresh tick.
		drainBody(resp.Body)
		p.record(w, st, nil, "", fmt.Errorf("peer answered %d: %s", resp.StatusCode, strings.TrimSpace(string(msg))))
	}
}

// maxErrorDrain bounds how much of a failed exchange's body is read to
// rescue the connection; past it, dropping the connection is cheaper than
// downloading a peer's endless error.
const maxErrorDrain = 64 << 10

// drainBody consumes at most maxErrorDrain of rd so the transport can
// return the connection to its idle pool.
func drainBody(rd io.Reader) {
	io.Copy(io.Discard, io.LimitReader(rd, maxErrorDrain)) //nolint:errcheck // best-effort connection rescue
}

// record folds a completed (non-304) exchange into a peer's accounting.
func (p *Peers) record(w *peerWatch, st *peerDigest, d *cachedigest.PeerDigest, etag string, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		st.failures++
		st.consecutive++
		st.lastErr = err.Error()
		return // the last good digest keeps serving, flagged stale by age
	}
	st.fetches++
	st.consecutive = 0
	st.lastErr = ""
	st.digest = d
	st.etag = etag
	st.lastUpdate = time.Now()
}

// readEnvelope buffers and decodes a digest envelope from rd, size-checking
// from the 88-byte header before trusting the body's claimed length.
func readEnvelope(rd io.Reader) (*cachedigest.PeerDigest, error) {
	hdr := make([]byte, cachedigest.EnvelopeHeaderLen)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", cachedigest.ErrEnvelopeCorrupt, err)
	}
	info, err := cachedigest.DecodeEnvelopeInfo(hdr)
	if err != nil {
		return nil, err
	}
	env := make([]byte, info.EnvelopeSize())
	copy(env, hdr)
	if _, err := io.ReadFull(rd, env[len(hdr):]); err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", cachedigest.ErrEnvelopeCorrupt, err)
	}
	if n, _ := io.ReadFull(rd, make([]byte, 1)); n != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after envelope", cachedigest.ErrEnvelopeCorrupt)
	}
	return cachedigest.OpenEnvelope(env)
}

// RefreshNow synchronously refreshes every configured peer of one filter —
// the POST .../peers/refresh handler, and what deterministic tests and the
// smoke script use instead of waiting out the interval. It returns the
// post-refresh status.
func (p *Peers) RefreshNow(name string) ([]PeerStatus, error) {
	p.mu.Lock()
	w := p.watches[name]
	urls := len(p.urls)
	p.mu.Unlock()
	if w == nil {
		return nil, fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	if urls == 0 {
		return nil, ErrNoPeers
	}
	p.fetchAll(w)
	return p.Status(name)
}

// Push imports a digest envelope under a peer label — the push half of the
// gossip, for peers that cannot be dialed back. Push is unauthenticated,
// so it follows the registry's header-first discipline: the digest's size
// is read from the 88-byte header and reserved against the per-filter
// MaxPushedPeers / MaxPushedDigestBits budget BEFORE the payload is
// buffered, and the reservation is filled or rolled back — a pusher cannot
// make the node hold more digest bytes than the budget it was granted.
func (p *Peers) Push(name, label string, rd io.Reader) (PeerStatus, error) {
	// Labels are retained as map keys and echoed through the peers JSON, so
	// they follow the filter-name rule (bounded length, no control or
	// separator characters). The HTTP layer rejects bad labels with 400
	// before reaching here; this guards direct callers.
	if !ValidFilterName(label) {
		return PeerStatus{}, fmt.Errorf("service: invalid peer label %q (want %s)", label, filterName)
	}
	p.mu.Lock()
	w := p.watches[name]
	p.mu.Unlock()
	if w == nil {
		return PeerStatus{}, fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	hdr := make([]byte, cachedigest.EnvelopeHeaderLen)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return PeerStatus{}, fmt.Errorf("%w: reading header: %v", cachedigest.ErrEnvelopeCorrupt, err)
	}
	info, err := cachedigest.DecodeEnvelopeInfo(hdr)
	if err != nil {
		return PeerStatus{}, err
	}
	bits := uint64(info.Shards) * info.ShardBits
	if err := w.reservePush(label, bits); err != nil {
		return PeerStatus{}, err
	}
	env := make([]byte, info.EnvelopeSize())
	copy(env, hdr)
	var d *cachedigest.PeerDigest
	if _, err = io.ReadFull(rd, env[len(hdr):]); err != nil {
		err = fmt.Errorf("%w: reading payload: %v", cachedigest.ErrEnvelopeCorrupt, err)
	} else {
		d, err = cachedigest.OpenEnvelope(env)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		w.pushedBits -= bits // roll the reservation back
		return PeerStatus{}, err
	}
	st := w.pushed[label]
	if st == nil {
		st = &peerDigest{peer: label, pushed: true}
		w.pushed[label] = st
	}
	if st.digest != nil {
		w.pushedBits -= st.digest.Bits() // the replaced digest's charge
	}
	st.fetches++
	st.consecutive = 0
	st.lastErr = ""
	st.digest = d
	st.lastUpdate = time.Now()
	return p.statusOf(st), nil
}

// reservePush charges bits of pushed-digest budget for label before any
// payload is buffered. A replacement's old charge is credited in the check
// (and released when the new digest is actually stored), so updating a
// label never deadlocks against a full budget; under racing replacements
// of one label the retained total stays exact and only the transient
// in-flight sum can briefly overshoot.
func (w *peerWatch) reservePush(label string, bits uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	prev := w.pushed[label]
	if prev == nil && len(w.pushed) >= MaxPushedPeers {
		return fmt.Errorf("%w: filter already retains %d pushed digests", ErrPushedDigestLimit, len(w.pushed))
	}
	var prevBits uint64
	if prev != nil && prev.digest != nil {
		prevBits = prev.digest.Bits()
	}
	if bits > MaxPushedDigestBits || w.pushedBits-prevBits > MaxPushedDigestBits-bits {
		return fmt.Errorf("%w: %d digest bits pushed, %d of %d retained",
			ErrPushedDigestLimit, bits, w.pushedBits, MaxPushedDigestBits)
	}
	w.pushedBits += bits
	return nil
}

// PeerStatus is one peer's accounting as served on GET .../peers.
type PeerStatus struct {
	// Peer is the sibling's base URL (fetched) or push label.
	Peer string `json:"peer"`
	// Source is "fetched" for refresh-loop peers, "pushed" for imports.
	Source string `json:"source"`
	// HasDigest reports whether a usable digest is held.
	HasDigest bool `json:"has_digest"`
	// Generation, DigestBits and DigestWeight describe the held digest.
	Generation   uint64 `json:"generation,omitempty"`
	DigestBits   uint64 `json:"digest_bits,omitempty"`
	DigestWeight uint64 `json:"digest_weight,omitempty"`
	// AgeSeconds is the time since the last successful update (200, 304 or
	// push); Stale reports whether it exceeds the staleness bound.
	AgeSeconds float64 `json:"age_seconds,omitempty"`
	Stale      bool    `json:"stale,omitempty"`
	// Fetches, NotModified and Failures count completed exchanges;
	// ConsecutiveFailures counts failures since the last success.
	Fetches             uint64 `json:"fetches,omitempty"`
	NotModified         uint64 `json:"not_modified,omitempty"`
	Failures            uint64 `json:"failures,omitempty"`
	ConsecutiveFailures uint64 `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
}

// statusOf snapshots one peer's accounting. The caller holds w.mu.
func (p *Peers) statusOf(st *peerDigest) PeerStatus {
	out := PeerStatus{
		Peer:                st.peer,
		Source:              "fetched",
		HasDigest:           st.digest != nil,
		Fetches:             st.fetches,
		NotModified:         st.notModified,
		Failures:            st.failures,
		ConsecutiveFailures: st.consecutive,
		LastError:           st.lastErr,
	}
	if st.pushed {
		out.Source = "pushed"
	}
	if st.digest != nil {
		out.Generation = st.digest.Generation()
		out.DigestBits = st.digest.Bits()
		out.DigestWeight = st.digest.Weight()
	}
	if !st.lastUpdate.IsZero() {
		age := time.Since(st.lastUpdate)
		out.AgeSeconds = age.Seconds()
		out.Stale = age > p.staleAfter
	}
	return out
}

// Status snapshots every peer of one filter: configured peers in their
// configured order, then pushed peers sorted by label.
func (p *Peers) Status(name string) ([]PeerStatus, error) {
	p.mu.Lock()
	w := p.watches[name]
	p.mu.Unlock()
	if w == nil {
		return nil, fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]PeerStatus, 0, len(w.fetched)+len(w.pushed))
	for _, st := range w.fetched {
		out = append(out, p.statusOf(st))
	}
	labels := make([]string, 0, len(w.pushed))
	for l := range w.pushed {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		out = append(out, p.statusOf(w.pushed[l]))
	}
	return out, nil
}

// PeerClaim is one peer's answer inside a routing verdict.
type PeerClaim struct {
	// Peer names the sibling (URL or push label).
	Peer string `json:"peer"`
	// Claims reports whether the sibling's digest contains the item.
	Claims bool `json:"claims"`
	// Generation is the claimed digest's generation.
	Generation uint64 `json:"generation,omitempty"`
	// AgeSeconds and Stale qualify how current the digest is; Squid-style
	// routing uses stale digests until replaced, so a claim from a stale
	// digest still routes — flagged, so the caller can decide otherwise.
	AgeSeconds float64 `json:"age_seconds,omitempty"`
	Stale      bool    `json:"stale,omitempty"`
}

// Claims answers one item against every held digest of one filter, in
// status order. Peers holding no digest claim nothing.
func (p *Peers) Claims(name string, item []byte) []PeerClaim {
	p.mu.Lock()
	w := p.watches[name]
	p.mu.Unlock()
	if w == nil {
		return nil
	}
	w.mu.RLock()
	states := make([]*peerDigest, 0, len(w.fetched)+len(w.pushed))
	states = append(states, w.fetched...)
	labels := make([]string, 0, len(w.pushed))
	for l := range w.pushed {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		states = append(states, w.pushed[l])
	}
	type held struct {
		claim  PeerClaim
		digest *cachedigest.PeerDigest
	}
	snapshot := make([]held, len(states))
	for i, st := range states {
		h := held{digest: st.digest, claim: PeerClaim{Peer: st.peer}}
		if st.digest != nil {
			h.claim.Generation = st.digest.Generation()
		}
		if !st.lastUpdate.IsZero() {
			age := time.Since(st.lastUpdate)
			h.claim.AgeSeconds = age.Seconds()
			h.claim.Stale = age > p.staleAfter
		}
		snapshot[i] = h
	}
	w.mu.RUnlock()
	// Digest evaluation happens outside the lock: PeerDigest is immutable
	// and concurrency-safe, and k hashes per peer need not serialize with
	// refresh bookkeeping.
	out := make([]PeerClaim, len(snapshot))
	for i, h := range snapshot {
		if h.digest != nil {
			h.claim.Claims = h.digest.Test(item)
		}
		out[i] = h.claim
	}
	return out
}
