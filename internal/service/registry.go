package service

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
)

// DefaultFilterName is the registry entry the /v1/* back-compat shim routes
// to; `evilbloom serve` creates it from its command-line flags.
const DefaultFilterName = "default"

// Control-plane limits. The data plane bounds every request (MaxBatch,
// MaxItemLen, MaxBodyBytes); these bound what filter creation may allocate,
// so the unauthenticated control plane cannot be driven into memory
// exhaustion either.
const (
	// MaxFilters caps how many filters one registry holds.
	MaxFilters = 64
	// MaxFilterBits caps one filter's total storage in bits
	// (shards × shard_bits × counter width): 2^33 is a 1 GiB bloom filter
	// or a 4 GiB counting filter at the default 4-bit width.
	MaxFilterBits = uint64(1) << 33
)

// Registry errors, matched by the HTTP layer to pick status codes.
var (
	// ErrFilterExists answers creation of a name already in use.
	ErrFilterExists = errors.New("service: filter already exists")
	// ErrFilterNotFound answers operations on an unknown name.
	ErrFilterNotFound = errors.New("service: no such filter")
	// ErrRegistryFull answers creation beyond MaxFilters.
	ErrRegistryFull = errors.New("service: registry is full; delete a filter first")
)

// filterName validates registry names: URL-path-safe, bounded, and unable to
// collide with the fixed /v2 route segments.
var filterName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ValidFilterName reports whether name is acceptable to Create.
func ValidFilterName(name string) bool { return filterName.MatchString(name) }

// Filter is one named entry in a Registry: a Sharded store plus its name.
// The store carries its own (normalized) configuration; secrets stay inside
// it and are never exposed through the registry.
type Filter struct {
	name  string
	store *Sharded
}

// Name returns the registry name.
func (f *Filter) Name() string { return f.name }

// Store returns the underlying sharded store.
func (f *Filter) Store() *Sharded { return f.store }

// Registry is a concurrency-safe collection of named filter instances, each
// with its own variant, mode, geometry and keys. All mutation is
// coarse-grained (create/delete are rare control-plane operations); item
// traffic takes only the read lock on the way to a filter's own striped
// locks.
type Registry struct {
	mu      sync.RWMutex
	filters map[string]*Filter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{filters: make(map[string]*Filter)}
}

// Create builds a filter from cfg and registers it under name. It fails
// with ErrFilterExists when the name is taken — filters are immutable once
// created; delete and re-create to change configuration — and enforces the
// MaxFilters and MaxFilterBits limits before allocating anything.
func (r *Registry) Create(name string, cfg Config) (*Filter, error) {
	if !ValidFilterName(name) {
		return nil, fmt.Errorf("service: invalid filter name %q (want %s)", name, filterName)
	}
	// Resolve the geometry first so the size check precedes allocation: a
	// crafted shard_bits or capacity must be rejected, not OOM the server.
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	width := uint64(1)
	if cfg.Variant == VariantCounting {
		width = uint64(cfg.CounterWidth)
	}
	if bits := uint64(cfg.Shards) * cfg.ShardBits * width; bits > MaxFilterBits {
		return nil, fmt.Errorf("service: filter would need %d bits of storage, limit %d (shards × shard_bits × counter width)",
			bits, MaxFilterBits)
	}
	// Cheap early capacity check (best effort; authoritative re-check at
	// insertion below), then build outside the lock: sizing allocates.
	if r.Len() >= MaxFilters {
		return nil, fmt.Errorf("%w (%d registered)", ErrRegistryFull, r.Len())
	}
	store, err := NewSharded(cfg)
	if err != nil {
		return nil, err
	}
	f := &Filter{name: name, store: store}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.filters[name]; taken {
		return nil, fmt.Errorf("%w: %q", ErrFilterExists, name)
	}
	if len(r.filters) >= MaxFilters {
		return nil, fmt.Errorf("%w (%d registered)", ErrRegistryFull, len(r.filters))
	}
	r.filters[name] = f
	return f, nil
}

// Adopt registers an already-built store under name — the path `evilbloom
// serve` uses to install its flag-configured default filter.
func (r *Registry) Adopt(name string, store *Sharded) (*Filter, error) {
	if !ValidFilterName(name) {
		return nil, fmt.Errorf("service: invalid filter name %q (want %s)", name, filterName)
	}
	f := &Filter{name: name, store: store}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.filters[name]; taken {
		return nil, fmt.Errorf("%w: %q", ErrFilterExists, name)
	}
	r.filters[name] = f
	return f, nil
}

// Get returns the filter registered under name.
func (r *Registry) Get(name string) (*Filter, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.filters[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	return f, nil
}

// Delete removes the filter registered under name. In-flight operations on
// the filter finish against the orphaned store; its memory is reclaimed
// when they drain.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.filters[name]; !ok {
		return fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	delete(r.filters, name)
	return nil
}

// List returns every registered filter, sorted by name.
func (r *Registry) List() []*Filter {
	r.mu.RLock()
	out := make([]*Filter, 0, len(r.filters))
	for _, f := range r.filters {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of registered filters.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.filters)
}
