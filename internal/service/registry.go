package service

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
)

// DefaultFilterName is the registry entry the /v1/* back-compat shim routes
// to; `evilbloom serve` creates it from its command-line flags.
const DefaultFilterName = "default"

// Control-plane limits. The data plane bounds every request (MaxBatch,
// MaxItemLen, MaxBodyBytes); these bound what filter creation may allocate,
// so the unauthenticated control plane cannot be driven into memory
// exhaustion either.
const (
	// MaxFilters caps how many filters one registry holds.
	MaxFilters = 64
	// MaxFilterBits caps one filter's total storage in bits
	// (shards × shard_bits × counter width): 2^33 bits is 1 GiB resident.
	MaxFilterBits = uint64(1) << 33
	// MaxTotalBits caps the aggregate storage across every filter in the
	// registry, reserved and live, so the per-filter limits cannot compose
	// to more memory than a host has (MaxFilters × MaxFilterBits would be
	// 64 GiB): 2^35 bits is 4 GiB resident.
	MaxTotalBits = uint64(1) << 35
)

// Registry errors, matched by the HTTP layer to pick status codes.
var (
	// ErrFilterExists answers creation of a name already in use.
	ErrFilterExists = errors.New("service: filter already exists")
	// ErrFilterNotFound answers operations on an unknown name.
	ErrFilterNotFound = errors.New("service: no such filter")
	// ErrRegistryFull answers creation beyond MaxFilters.
	ErrRegistryFull = errors.New("service: registry is full; delete a filter first")
	// ErrBudgetExhausted answers creation beyond MaxTotalBits.
	ErrBudgetExhausted = errors.New("service: registry storage budget exhausted; delete a filter first")
)

// filterName validates registry names: URL-path-safe, bounded, and unable to
// collide with the fixed /v2 route segments.
var filterName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ValidFilterName reports whether name is acceptable to Create.
func ValidFilterName(name string) bool { return filterName.MatchString(name) }

// FilterNamePattern returns the filter-name rule as a pattern string, for
// error messages that tell a client what a valid name (or peer label, which
// follows the same rule) looks like.
func FilterNamePattern() string { return filterName.String() }

// Filter is one named entry in a Registry: a Sharded store plus its name.
// The store carries its own (normalized) configuration; secrets stay inside
// it and are never exposed through the registry.
type Filter struct {
	name  string
	store *Sharded
	// bits is the storage charged against the registry budget at creation,
	// refunded on Delete.
	bits uint64
	// persist is the filter's durable store, nil in a memory-only registry.
	persist *Persister
}

// Name returns the registry name.
func (f *Filter) Name() string { return f.name }

// Store returns the underlying sharded store.
func (f *Filter) Store() *Sharded { return f.store }

// Durable reports whether the filter journals to a durable store.
func (f *Filter) Durable() bool { return f.persist != nil }

// Compact forces a snapshot of the filter's current state and starts a
// fresh log segment, bounding recovery time. It fails with ErrNotDurable on
// a memory-only filter.
func (f *Filter) Compact() error {
	if f.persist == nil {
		return ErrNotDurable
	}
	return f.persist.Compact(f.store)
}

// Generation returns the durable store's snapshot generation (0 when the
// filter is memory-only).
func (f *Filter) Generation() uint64 {
	if f.persist == nil {
		return 0
	}
	return f.persist.Generation()
}

// Registry is a concurrency-safe collection of named filter instances, each
// with its own variant, mode, geometry and keys. All mutation is
// coarse-grained (create/delete are rare control-plane operations); item
// traffic takes only the read lock on the way to a filter's own striped
// locks.
type Registry struct {
	mu      sync.RWMutex
	filters map[string]*Filter
	// reserved holds names whose stores are still being built outside the
	// lock: name → the storage bits charged for the reservation. Reserving
	// before building means a request that would lose the name race or
	// breach a limit never reaches allocation, so concurrent PUTs cannot
	// multiply peak memory beyond the caps.
	reserved map[string]uint64
	// bits is the storage charged by live and reserved filters together,
	// bounded by MaxTotalBits.
	bits uint64
	// dataDir, when non-empty, makes the registry durable: every filter
	// owns a directory under it, journals its mutations, and is reopened by
	// OpenDataDir at the next boot. Set once by OpenDataDir before traffic.
	dataDir string
	// sync is the durable registry's fsync policy.
	sync SyncPolicy
	// peers is the §7 digest-exchange subsystem. Always present so pushed
	// digests and the route endpoint work on every registry; refresh loops
	// run only once ConfigurePeers installs peer URLs. Each filter's
	// refresh work starts when the filter is published and stops inside
	// Delete (and Close), so no goroutine outlives its filter.
	peers *Peers
	// limiter is the per-client mutation rate-limit and accounting
	// subsystem. Always present — accounting runs on every registry so
	// pollution can be attributed; throttling engages only once
	// ConfigureRateLimit installs a budget.
	limiter *Limiter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		filters:  make(map[string]*Filter),
		reserved: make(map[string]uint64),
		peers:    newPeers(),
		limiter:  newLimiter(),
	}
}

// Peers returns the digest-exchange subsystem.
func (r *Registry) Peers() *Peers { return r.peers }

// ConfigurePeers joins the registry to a digest-exchange mesh: every
// current and future filter periodically fetches each peer's same-named
// filter's digest. One-shot; call before serving traffic.
func (r *Registry) ConfigurePeers(cfg PeerConfig) error { return r.peers.configure(cfg) }

// Limiter returns the mutation rate-limit and accounting subsystem.
func (r *Registry) Limiter() *Limiter { return r.limiter }

// ConfigureRateLimit installs per-client mutation budgets (and accounting
// bounds) for every filter in the registry. One-shot; call before serving
// traffic.
func (r *Registry) ConfigureRateLimit(cfg RateLimitConfig) error { return r.limiter.configure(cfg) }

// storageBits resolves a defaulted Config's total filter storage in bits
// (shards × shard_bits × counter width), rejecting any geometry over
// MaxFilterBits. The comparison divides rather than multiplies: a crafted
// shard_bits near 2^64/shards would make the product wrap mod 2^64, slip
// under the cap, and reach allocation. Every factor is positive and bounded
// (withDefaults caps Shards and CounterWidth), so the divisions are safe and
// the returned product cannot overflow.
func (c Config) storageBits() (uint64, error) {
	width := uint64(1)
	if c.Variant == VariantCounting {
		width = uint64(c.CounterWidth)
	}
	if c.ShardBits > MaxFilterBits/uint64(c.Shards)/width {
		return 0, fmt.Errorf("service: filter would need %d shards × %d bits × %d-bit positions of storage, limit %d bits",
			c.Shards, c.ShardBits, width, MaxFilterBits)
	}
	return uint64(c.Shards) * c.ShardBits * width, nil
}

// Create builds a filter from cfg and registers it under name. It fails
// with ErrFilterExists when the name is taken — filters are immutable once
// created; delete and re-create to change configuration — and enforces the
// MaxFilters, MaxFilterBits and MaxTotalBits limits before allocating
// anything: the name and its storage budget are reserved under the lock
// first, then the store is built outside the lock (sizing allocates) and the
// reservation is filled or rolled back.
func (r *Registry) Create(name string, cfg Config) (*Filter, error) {
	return r.create(name, cfg, nil)
}

// CreateFromSnapshot builds a filter from a snapshot envelope read from rd
// and registers it under name — the PUT-with-snapshot-body path. The
// envelope header alone resolves the configuration (naive snapshots only;
// hardened ones carry no keys and are refused with ErrSnapshotMismatch), so
// every registry limit is enforced and the storage budget reserved BEFORE
// the payload is buffered: an unauthenticated client cannot make the server
// hold more snapshot bytes than the budget it was granted — the 72-byte
// header is all that is read ahead of the size check and reservation.
func (r *Registry) CreateFromSnapshot(name string, rd io.Reader) (*Filter, error) {
	hdr := make([]byte, snapshotHeaderLen)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrSnapshotCorrupt, err)
	}
	cfg, err := SnapshotConfig(hdr)
	if err != nil {
		return nil, err
	}
	h, err := decodeSnapshotHeader(hdr) // re-decode for the exact payload length
	if err != nil {
		return nil, err
	}
	bits, err := r.validate(name, &cfg)
	if err != nil {
		return nil, err
	}
	if err := r.reserve(name, bits); err != nil {
		return nil, err
	}
	// The reservation caps the geometry (storageBits ≤ MaxFilterBits and the
	// header's payload length is geometry-implied), so this buffer is
	// bounded by the budget just charged.
	env := make([]byte, snapshotHeaderLen+int(h.payloadLen)+snapshotTrailerLen)
	copy(env, hdr)
	if _, err := io.ReadFull(rd, env[snapshotHeaderLen:]); err != nil {
		r.unreserve(name, bits)
		return nil, fmt.Errorf("%w: reading payload: %v", ErrSnapshotCorrupt, err)
	}
	if n, _ := io.ReadFull(rd, make([]byte, 1)); n != 0 {
		r.unreserve(name, bits)
		return nil, fmt.Errorf("%w: trailing bytes after envelope", ErrSnapshotCorrupt)
	}
	return r.createReserved(name, cfg, bits, env)
}

// validate resolves cfg in place and returns its storage bits, enforcing
// the per-filter limits — everything creation checks before reserving.
func (r *Registry) validate(name string, cfg *Config) (uint64, error) {
	if !ValidFilterName(name) {
		return 0, fmt.Errorf("service: invalid filter name %q (want %s)", name, filterName)
	}
	// Resolve the geometry first so the size check precedes allocation: a
	// crafted shard_bits or capacity must be rejected, not OOM the server.
	c, err := cfg.withDefaults()
	if err != nil {
		return 0, err
	}
	*cfg = c
	return c.storageBits()
}

// create is the spec-based creation path: validate, reserve, build.
func (r *Registry) create(name string, cfg Config, snap []byte) (*Filter, error) {
	bits, err := r.validate(name, &cfg)
	if err != nil {
		return nil, err
	}
	if err := r.reserve(name, bits); err != nil {
		return nil, err
	}
	return r.createReserved(name, cfg, bits, snap)
}

// createReserved finishes a creation whose name and budget are already
// reserved: build the store, optionally restore a snapshot into it,
// initialize its durable directory, publish — any failure rolls the
// reservation back, so a failed or oversized restore never leaks budget
// (fill-or-rollback).
func (r *Registry) createReserved(name string, cfg Config, bits uint64, snap []byte) (*Filter, error) {
	store, err := NewSharded(cfg)
	if err != nil {
		r.unreserve(name, bits)
		return nil, err
	}
	if snap != nil {
		if err := store.Restore(snap); err != nil {
			r.unreserve(name, bits)
			return nil, err
		}
	}
	f := &Filter{name: name, store: store, bits: bits}
	if r.dataDir != "" {
		// The received envelope doubles as the filter's generation-0
		// snapshot, so the directory is byte-complete from the first moment.
		p, err := createPersister(r.filterDir(name), store.config(), r.sync, snap)
		if err != nil {
			if !errors.Is(err, errDirInitialized) {
				// Never remove a directory createPersister refused to touch:
				// it belongs to someone else's filter.
				os.RemoveAll(r.filterDir(name)) //nolint:errcheck // best-effort rollback
			}
			r.unreserve(name, bits)
			return nil, err
		}
		store.SetJournal(p)
		f.persist = p
	}
	// Watch before publishing: the name is still reserved, so no Delete can
	// race in between and orphan a just-started refresh loop (or a
	// just-provisioned accounting table).
	r.peers.watch(name)
	r.limiter.watch(name)
	r.mu.Lock()
	delete(r.reserved, name)
	r.filters[name] = f
	r.mu.Unlock()
	return f, nil
}

// filterDir returns a filter's directory under the data dir. Filter names
// are ValidFilterName-constrained (no separators, no leading dot), so the
// name is safe as a single path component.
func (r *Registry) filterDir(name string) string {
	return filepath.Join(r.dataDir, name)
}

// reserve claims name and bits of storage budget ahead of the build,
// enforcing every registry limit while nothing has been allocated yet.
func (r *Registry) reserve(name string, bits uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.filters[name]; taken {
		return fmt.Errorf("%w: %q", ErrFilterExists, name)
	}
	if _, taken := r.reserved[name]; taken {
		return fmt.Errorf("%w: %q", ErrFilterExists, name)
	}
	if n := len(r.filters) + len(r.reserved); n >= MaxFilters {
		return fmt.Errorf("%w (%d registered)", ErrRegistryFull, n)
	}
	if err := r.chargeLocked(bits); err != nil {
		return err
	}
	r.reserved[name] = bits
	return nil
}

// StorageInUse reports the storage budget currently charged — bits held by
// live and reserved filters together — and the number of in-flight
// reservations. Tests assert a failed create rolls both back to zero.
func (r *Registry) StorageInUse() (bits uint64, reservations int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bits, len(r.reserved)
}

// unreserve rolls back a reservation whose build failed.
func (r *Registry) unreserve(name string, bits uint64) {
	r.mu.Lock()
	delete(r.reserved, name)
	r.bits -= bits
	r.mu.Unlock()
}

// chargeLocked adds bits to the registry-wide storage budget, failing when
// the total would exceed MaxTotalBits. The caller holds r.mu. Written
// subtraction-side so no operand can wrap.
func (r *Registry) chargeLocked(bits uint64) error {
	if bits > MaxTotalBits || r.bits > MaxTotalBits-bits {
		return fmt.Errorf("%w: %d bits requested, %d of %d in use",
			ErrBudgetExhausted, bits, r.bits, MaxTotalBits)
	}
	r.bits += bits
	return nil
}

// Adopt registers an already-built store under name — the path `evilbloom
// serve` uses to install its flag-configured default filter. The store's
// storage is charged against the registry budget so later unauthenticated
// creates see an honest total, but the charge is unconditional: the
// operator's store exists already, so refusing it here would protect
// nothing and fail startup after the allocation. An adopted store over
// MaxTotalBits simply leaves no budget for unauthenticated creation.
func (r *Registry) Adopt(name string, store *Sharded) (*Filter, error) {
	if !ValidFilterName(name) {
		return nil, fmt.Errorf("service: invalid filter name %q (want %s)", name, filterName)
	}
	// Reserve the name (with no budget charge: Adopt's charge below is
	// unconditional) before any durable side effect, so a taken or racing
	// name is turned away while nothing exists to roll back — the same
	// order Create uses, and what keeps the rollback paths from ever
	// touching a live filter's directory.
	r.mu.Lock()
	if _, taken := r.filters[name]; taken {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrFilterExists, name)
	}
	if _, taken := r.reserved[name]; taken {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrFilterExists, name)
	}
	r.reserved[name] = 0
	r.mu.Unlock()

	bits := store.storageBits()
	f := &Filter{name: name, store: store, bits: bits}
	if r.dataDir != "" {
		// The adopted store may already hold state (an operator pre-warms
		// it before serving), so its current snapshot seeds generation 0.
		snap, err := store.Snapshot()
		if err != nil {
			r.unreserve(name, 0)
			return nil, err
		}
		p, err := createPersister(r.filterDir(name), store.config(), r.sync, snap)
		if err != nil {
			if !errors.Is(err, errDirInitialized) {
				os.RemoveAll(r.filterDir(name)) //nolint:errcheck // best-effort rollback
			}
			r.unreserve(name, 0)
			return nil, err
		}
		store.SetJournal(p)
		f.persist = p
	}
	r.peers.watch(name) // before publish: the reservation shields the race with Delete
	r.limiter.watch(name)
	r.mu.Lock()
	delete(r.reserved, name)
	r.bits += bits
	r.filters[name] = f
	r.mu.Unlock()
	return f, nil
}

// Get returns the filter registered under name.
func (r *Registry) Get(name string) (*Filter, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.filters[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	return f, nil
}

// Delete removes the filter registered under name, refunds its storage
// budget, stops its peer-refresh loop (waiting for it to exit — no
// goroutine works for a deleted filter once Delete returns) and deletes its
// durable directory. In-flight operations on the filter finish against the
// orphaned store (a closed journal drops their records — the state they
// mutate is condemned); its memory is reclaimed when they drain.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	f, ok := r.filters[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	delete(r.filters, name)
	r.bits -= f.bits
	if f.persist != nil {
		// Keep the name reserved while the directory is torn down outside
		// the lock: a racing re-create of the same name must not build its
		// fresh directory under the RemoveAll below (it gets ErrFilterExists
		// until the teardown finishes).
		r.reserved[name] = 0
	}
	r.mu.Unlock()
	r.peers.unwatch(name)
	r.limiter.drop(name)
	if f.persist != nil {
		f.persist.Close() //nolint:errcheck // directory is removed next
		err := f.persist.remove()
		r.unreserve(name, 0)
		return err
	}
	return nil
}

// OpenDataDir makes the registry durable and adopts every filter already
// persisted under dir: each is rebuilt from its meta configuration, its
// newest restorable snapshot and its surviving log segments, charged
// against the registry limits exactly like a fresh creation (reserve →
// build → fill-or-rollback). A filter that cannot be recovered fails the
// whole open — silently dropping persisted state would defeat the point —
// with every reservation already rolled back. It returns the number of
// filters recovered.
func (r *Registry) OpenDataDir(dir string, policy SyncPolicy) (int, error) {
	if r.dataDir != "" {
		return 0, fmt.Errorf("service: registry already has data dir %s", r.dataDir)
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return 0, err
	}
	r.dataDir = dir
	r.sync = policy
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, e := range entries {
		if !e.IsDir() || !ValidFilterName(e.Name()) {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, e.Name(), metaFileName)); err != nil {
			continue // not a filter directory
		}
		if err := r.loadPersisted(e.Name()); err != nil {
			return loaded, fmt.Errorf("service: recovering filter %q: %w", e.Name(), err)
		}
		loaded++
	}
	return loaded, nil
}

// loadPersisted recovers one filter directory through the registry's
// accounting: the budget is reserved before the store allocates, and any
// recovery failure (corrupt meta, oversized geometry, unrestorable
// snapshot chain) rolls the reservation back.
func (r *Registry) loadPersisted(name string) error {
	p, cfg, err := openPersister(r.filterDir(name), r.sync)
	if err != nil {
		return err
	}
	cfg, err = cfg.withDefaults()
	if err != nil {
		return err
	}
	bits, err := cfg.storageBits()
	if err != nil {
		return err
	}
	if err := r.reserve(name, bits); err != nil {
		return err
	}
	store, err := NewSharded(cfg)
	if err != nil {
		r.unreserve(name, bits)
		return err
	}
	if err := p.Replay(store); err != nil {
		r.unreserve(name, bits)
		return err
	}
	store.SetJournal(p)
	f := &Filter{name: name, store: store, bits: bits, persist: p}
	r.peers.watch(name) // before publish: the reservation shields the race with Delete
	r.limiter.watch(name)
	r.mu.Lock()
	delete(r.reserved, name)
	r.filters[name] = f
	r.mu.Unlock()
	return nil
}

// Close stops every peer-refresh loop (waiting for each to exit), then
// flushes and closes every filter's durable store — the graceful-shutdown
// tail, after the HTTP server has drained. The registry stays readable but
// journals no further mutations. It returns the first error.
func (r *Registry) Close() error {
	r.peers.Close()
	r.mu.RLock()
	filters := make([]*Filter, 0, len(r.filters))
	for _, f := range r.filters {
		filters = append(filters, f)
	}
	r.mu.RUnlock()
	var first error
	for _, f := range filters {
		if f.persist == nil {
			continue
		}
		if err := f.persist.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// List returns every registered filter, sorted by name.
func (r *Registry) List() []*Filter {
	r.mu.RLock()
	out := make([]*Filter, 0, len(r.filters))
	for _, f := range r.filters {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of registered filters.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.filters)
}
