package service

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
)

// DefaultFilterName is the registry entry the /v1/* back-compat shim routes
// to; `evilbloom serve` creates it from its command-line flags.
const DefaultFilterName = "default"

// Control-plane limits. The data plane bounds every request (MaxBatch,
// MaxItemLen, MaxBodyBytes); these bound what filter creation may allocate,
// so the unauthenticated control plane cannot be driven into memory
// exhaustion either.
const (
	// MaxFilters caps how many filters one registry holds.
	MaxFilters = 64
	// MaxFilterBits caps one filter's total storage in bits
	// (shards × shard_bits × counter width): 2^33 bits is 1 GiB resident.
	MaxFilterBits = uint64(1) << 33
	// MaxTotalBits caps the aggregate storage across every filter in the
	// registry, reserved and live, so the per-filter limits cannot compose
	// to more memory than a host has (MaxFilters × MaxFilterBits would be
	// 64 GiB): 2^35 bits is 4 GiB resident.
	MaxTotalBits = uint64(1) << 35
)

// Registry errors, matched by the HTTP layer to pick status codes.
var (
	// ErrFilterExists answers creation of a name already in use.
	ErrFilterExists = errors.New("service: filter already exists")
	// ErrFilterNotFound answers operations on an unknown name.
	ErrFilterNotFound = errors.New("service: no such filter")
	// ErrRegistryFull answers creation beyond MaxFilters.
	ErrRegistryFull = errors.New("service: registry is full; delete a filter first")
	// ErrBudgetExhausted answers creation beyond MaxTotalBits.
	ErrBudgetExhausted = errors.New("service: registry storage budget exhausted; delete a filter first")
)

// filterName validates registry names: URL-path-safe, bounded, and unable to
// collide with the fixed /v2 route segments.
var filterName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ValidFilterName reports whether name is acceptable to Create.
func ValidFilterName(name string) bool { return filterName.MatchString(name) }

// Filter is one named entry in a Registry: a Sharded store plus its name.
// The store carries its own (normalized) configuration; secrets stay inside
// it and are never exposed through the registry.
type Filter struct {
	name  string
	store *Sharded
	// bits is the storage charged against the registry budget at creation,
	// refunded on Delete.
	bits uint64
}

// Name returns the registry name.
func (f *Filter) Name() string { return f.name }

// Store returns the underlying sharded store.
func (f *Filter) Store() *Sharded { return f.store }

// Registry is a concurrency-safe collection of named filter instances, each
// with its own variant, mode, geometry and keys. All mutation is
// coarse-grained (create/delete are rare control-plane operations); item
// traffic takes only the read lock on the way to a filter's own striped
// locks.
type Registry struct {
	mu      sync.RWMutex
	filters map[string]*Filter
	// reserved holds names whose stores are still being built outside the
	// lock: name → the storage bits charged for the reservation. Reserving
	// before building means a request that would lose the name race or
	// breach a limit never reaches allocation, so concurrent PUTs cannot
	// multiply peak memory beyond the caps.
	reserved map[string]uint64
	// bits is the storage charged by live and reserved filters together,
	// bounded by MaxTotalBits.
	bits uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		filters:  make(map[string]*Filter),
		reserved: make(map[string]uint64),
	}
}

// storageBits resolves a defaulted Config's total filter storage in bits
// (shards × shard_bits × counter width), rejecting any geometry over
// MaxFilterBits. The comparison divides rather than multiplies: a crafted
// shard_bits near 2^64/shards would make the product wrap mod 2^64, slip
// under the cap, and reach allocation. Every factor is positive and bounded
// (withDefaults caps Shards and CounterWidth), so the divisions are safe and
// the returned product cannot overflow.
func (c Config) storageBits() (uint64, error) {
	width := uint64(1)
	if c.Variant == VariantCounting {
		width = uint64(c.CounterWidth)
	}
	if c.ShardBits > MaxFilterBits/uint64(c.Shards)/width {
		return 0, fmt.Errorf("service: filter would need %d shards × %d bits × %d-bit positions of storage, limit %d bits",
			c.Shards, c.ShardBits, width, MaxFilterBits)
	}
	return uint64(c.Shards) * c.ShardBits * width, nil
}

// Create builds a filter from cfg and registers it under name. It fails
// with ErrFilterExists when the name is taken — filters are immutable once
// created; delete and re-create to change configuration — and enforces the
// MaxFilters, MaxFilterBits and MaxTotalBits limits before allocating
// anything: the name and its storage budget are reserved under the lock
// first, then the store is built outside the lock (sizing allocates) and the
// reservation is filled or rolled back.
func (r *Registry) Create(name string, cfg Config) (*Filter, error) {
	if !ValidFilterName(name) {
		return nil, fmt.Errorf("service: invalid filter name %q (want %s)", name, filterName)
	}
	// Resolve the geometry first so the size check precedes allocation: a
	// crafted shard_bits or capacity must be rejected, not OOM the server.
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	bits, err := cfg.storageBits()
	if err != nil {
		return nil, err
	}
	if err := r.reserve(name, bits); err != nil {
		return nil, err
	}
	store, err := NewSharded(cfg)
	if err != nil {
		r.unreserve(name, bits)
		return nil, err
	}
	f := &Filter{name: name, store: store, bits: bits}
	r.mu.Lock()
	delete(r.reserved, name)
	r.filters[name] = f
	r.mu.Unlock()
	return f, nil
}

// reserve claims name and bits of storage budget ahead of the build,
// enforcing every registry limit while nothing has been allocated yet.
func (r *Registry) reserve(name string, bits uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.filters[name]; taken {
		return fmt.Errorf("%w: %q", ErrFilterExists, name)
	}
	if _, taken := r.reserved[name]; taken {
		return fmt.Errorf("%w: %q", ErrFilterExists, name)
	}
	if n := len(r.filters) + len(r.reserved); n >= MaxFilters {
		return fmt.Errorf("%w (%d registered)", ErrRegistryFull, n)
	}
	if err := r.chargeLocked(bits); err != nil {
		return err
	}
	r.reserved[name] = bits
	return nil
}

// unreserve rolls back a reservation whose build failed.
func (r *Registry) unreserve(name string, bits uint64) {
	r.mu.Lock()
	delete(r.reserved, name)
	r.bits -= bits
	r.mu.Unlock()
}

// chargeLocked adds bits to the registry-wide storage budget, failing when
// the total would exceed MaxTotalBits. The caller holds r.mu. Written
// subtraction-side so no operand can wrap.
func (r *Registry) chargeLocked(bits uint64) error {
	if bits > MaxTotalBits || r.bits > MaxTotalBits-bits {
		return fmt.Errorf("%w: %d bits requested, %d of %d in use",
			ErrBudgetExhausted, bits, r.bits, MaxTotalBits)
	}
	r.bits += bits
	return nil
}

// Adopt registers an already-built store under name — the path `evilbloom
// serve` uses to install its flag-configured default filter. The store's
// storage is charged against the registry budget so later unauthenticated
// creates see an honest total, but the charge is unconditional: the
// operator's store exists already, so refusing it here would protect
// nothing and fail startup after the allocation. An adopted store over
// MaxTotalBits simply leaves no budget for unauthenticated creation.
func (r *Registry) Adopt(name string, store *Sharded) (*Filter, error) {
	if !ValidFilterName(name) {
		return nil, fmt.Errorf("service: invalid filter name %q (want %s)", name, filterName)
	}
	bits := store.storageBits()
	f := &Filter{name: name, store: store, bits: bits}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.filters[name]; taken {
		return nil, fmt.Errorf("%w: %q", ErrFilterExists, name)
	}
	if _, taken := r.reserved[name]; taken {
		return nil, fmt.Errorf("%w: %q", ErrFilterExists, name)
	}
	r.bits += bits
	r.filters[name] = f
	return f, nil
}

// Get returns the filter registered under name.
func (r *Registry) Get(name string) (*Filter, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.filters[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	return f, nil
}

// Delete removes the filter registered under name and refunds its storage
// budget. In-flight operations on the filter finish against the orphaned
// store; its memory is reclaimed when they drain.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.filters[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrFilterNotFound, name)
	}
	delete(r.filters, name)
	r.bits -= f.bits
	return nil
}

// List returns every registered filter, sorted by name.
func (r *Registry) List() []*Filter {
	r.mu.RLock()
	out := make([]*Filter, 0, len(r.filters))
	for _, f := range r.filters {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of registered filters.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.filters)
}
