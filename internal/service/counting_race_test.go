package service

import (
	"fmt"
	"sync"
	"testing"

	"evilbloom/internal/core"
	"evilbloom/internal/urlgen"
)

// countingRaceConfig builds a small counting store that overflows quickly:
// 2-bit counters cap at 3, so a handful of repeated adds exercises the
// overflow path (wrap's occupancy erasure, saturate's pinning) while the
// race detector watches.
func countingRaceConfig(policy core.OverflowPolicy, shards int) Config {
	return Config{
		Variant:      VariantCounting,
		Shards:       shards,
		ShardBits:    2048,
		HashCount:    4,
		Mode:         ModeNaive,
		Seed:         3,
		RouteKey:     []byte("fedcba9876543210"),
		CounterWidth: 2,
		Overflow:     policy,
	}
}

// Concurrent add/remove/test/stats traffic on counting shards must be
// race-clean under every overflow policy (run with -race), and the
// incremental weight accounting — including the wrap-around occupancy
// erasure and removal zeroing — must end exactly at the ground truth.
func TestCountingConcurrentAddRemove(t *testing.T) {
	for _, policy := range []core.OverflowPolicy{core.Wrap, core.Saturate} {
		t.Run(policy.String(), func(t *testing.T) {
			s, err := NewSharded(countingRaceConfig(policy, 4))
			if err != nil {
				t.Fatal(err)
			}
			const workers, perWorker = 8, 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					gen := urlgen.New(int64(100 + w))
					items := make([][]byte, perWorker)
					for i := range items {
						items[i] = gen.Next()
					}
					for i, it := range items {
						// Repeated adds push 2-bit counters into overflow.
						for r := 0; r < 5; r++ {
							s.Add(it)
						}
						if i%2 == 0 {
							if _, err := s.Remove(it); err != nil {
								t.Errorf("worker %d: remove: %v", w, err)
								return
							}
						}
						s.Test(it)
						if i%20 == 0 {
							s.Stats()
							s.AddBatch(items[:5])
							if _, err := s.RemoveBatch(items[:5]); err != nil {
								t.Errorf("worker %d: remove-batch: %v", w, err)
								return
							}
							s.TestBatch(nil, items[:10])
						}
					}
				}(w)
			}
			wg.Wait()

			// Accounting: the incrementally tracked weight of every shard
			// must equal the ground-truth non-zero-counter scan, and the
			// aggregated overflow tally must match the backends'.
			var wantOverflows uint64
			for i := range s.shards {
				sh := &s.shards[i]
				if actual := sh.backend.Weight(); sh.weight != actual {
					t.Errorf("%v shard %d: tracked weight %d != scan %d", policy, i, sh.weight, actual)
				}
				wantOverflows += sh.backend.(overflowReporter).Overflows()
			}
			st := s.Stats()
			if st.Overflows != wantOverflows {
				t.Errorf("stats overflow tally %d != backend sum %d", st.Overflows, wantOverflows)
			}
			if st.Overflows == 0 {
				t.Errorf("%v: the storm never overflowed a 2-bit counter; the test lost its point", policy)
			}
			t.Logf("%v: count=%d weight=%d overflows=%d", policy, st.Count, st.Weight, st.Overflows)
		})
	}
}

// Removals can never underflow: a storm of concurrent removes of the same
// items (most of which will be refused once counters drain) must leave
// every counter consistent and the tracked weight exact.
func TestCountingConcurrentRemoveStorm(t *testing.T) {
	for _, policy := range []core.OverflowPolicy{core.Wrap, core.Saturate} {
		t.Run(policy.String(), func(t *testing.T) {
			s, err := NewSharded(countingRaceConfig(policy, 2))
			if err != nil {
				t.Fatal(err)
			}
			gen := urlgen.New(7)
			items := make([][]byte, 100)
			for i := range items {
				items[i] = gen.Next()
				s.Add(items[i])
			}
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, it := range items {
						// Only some succeed; the rest must be refusals, not
						// underflows or errors.
						if _, err := s.Remove(it); err != nil {
							t.Errorf("remove storm: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			for i := range s.shards {
				sh := &s.shards[i]
				if actual := sh.backend.Weight(); sh.weight != actual {
					t.Errorf("shard %d: tracked weight %d != scan %d after storm", i, sh.weight, actual)
				}
			}
			// Every item must now be gone (each was added once and eight
			// workers raced to remove it — exactly one per item wins), and
			// under Wrap the store must be empty.
			for i, it := range items {
				if s.Test(it) {
					t.Errorf("item %d survived the remove storm", i)
				}
			}
			if policy == core.Wrap && s.Stats().Weight != 0 {
				t.Errorf("weight %d after removing everything, want 0", s.Stats().Weight)
			}
		})
	}
}

// Remove on a bloom-variant store fails with the capability error, and the
// error is stable for errors.Is.
func TestBloomStoreNotRemovable(t *testing.T) {
	s, err := NewSharded(Config{Shards: 1, ShardBits: 1024, HashCount: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Removable() {
		t.Error("bloom store claims the remove capability")
	}
	if _, err := s.Remove([]byte("x")); err != ErrNotRemovable {
		t.Errorf("Remove error = %v, want ErrNotRemovable", err)
	}
	if _, err := s.RemoveBatch([][]byte{[]byte("x")}); err != ErrNotRemovable {
		t.Errorf("RemoveBatch error = %v, want ErrNotRemovable", err)
	}
}

// Crafted duplicate-position index sets must be refused, not allowed to
// underflow mid-removal (the partial-removal footprint).
func TestRemoveRefusesDuplicateUnderflow(t *testing.T) {
	fam, err := newShardFamily(countingRaceConfig(core.Wrap, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCounting(fam, 4, core.Wrap)
	if err != nil {
		t.Fatal(err)
	}
	// Counter 5 holds 1; an index set visiting it twice passes the
	// membership check but cannot be removed safely.
	c.AddIndexes([]uint64{5, 6})
	dup := []uint64{5, 5}
	if !c.TestIndexes(dup) {
		t.Fatal("membership check should pass: counter non-zero")
	}
	if c.CanRemoveIndexes(dup) {
		t.Error("duplicate set accepted although it would underflow")
	}
	if !c.CanRemoveIndexes([]uint64{5, 6}) {
		t.Error("legitimate removal rejected")
	}
	sh := &shard{backend: countingBackend{c}, remover: countingBackend{c}, weight: 2}
	removed, err := sh.removeLocked(dup)
	if err != nil || removed {
		t.Errorf("removeLocked(dup) = %v, %v; want refused without error", removed, err)
	}
	if fmt.Sprint(c.Counter(5)) != "1" {
		t.Errorf("refused removal still mutated counter: %d", c.Counter(5))
	}
}
