package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// The HTTP-layer bugfix sweep's regression tests: RFC 9110 If-None-Match
// handling on the digest endpoint, pushed-peer label validation, and
// keep-alive connection reuse across failed peer exchanges.

// etagMatch must implement RFC 9110 weak comparison over the list forms
// intermediaries actually send, not string equality.
func TestETagMatchRFC9110(t *testing.T) {
	const cur = `"evb-digest-ab12-7"`
	cases := []struct {
		name   string
		header string
		want   bool
	}{
		{"exact", cur, true},
		{"star", `*`, true},
		{"weak form of current", `W/"evb-digest-ab12-7"`, true},
		{"list containing current", `"other-tag", ` + cur, true},
		{"list containing weak current", `"a", W/"evb-digest-ab12-7", "b"`, true},
		{"list without whitespace", `"a",` + cur + `,"b"`, true},
		{"different tag", `"evb-digest-ab12-8"`, false},
		{"list without current", `"a", "b", W/"c"`, false},
		{"empty", ``, false},
		{"unquoted garbage", `evb-digest-ab12-7`, false},
		{"tag with inner comma matched", `"evb,digest"`, false},
		{"star inside list", `"a", *`, true},
		{"dangling weak prefix", `W/`, false},
		{"unterminated quote", `"evb-digest-ab12-7`, false},
	}
	for _, tc := range cases {
		if got := etagMatch(tc.header, cur); got != tc.want {
			t.Errorf("%s: etagMatch(%q) = %v, want %v", tc.name, tc.header, got, tc.want)
		}
	}
	// A tag containing a comma must survive tokenization when it is the
	// current tag too (RFC 9110 etagc permits commas).
	if !etagMatch(`"evb,digest"`, `"evb,digest"`) {
		t.Error("comma-bearing tag mangled by tokenization")
	}
	// Weak comparison is symmetric: a weak current tag matches its strong
	// candidate form.
	if !etagMatch(`"x"`, `W/"x"`) {
		t.Error("weak current tag did not weak-compare")
	}
}

// The digest endpoint must honor every RFC form over the wire: `*`, weak
// validators and comma-separated lists all earn the 304 that exact string
// equality used to deny.
func TestDigestConditionalRequestForms(t *testing.T) {
	ts, _ := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/d", naiveSpec(1), nil)
	_, etag, code := getDigest(t, ts.URL, "d", "")
	if code != http.StatusOK || etag == "" {
		t.Fatalf("digest fetch: %d, etag %q", code, etag)
	}
	hit := []string{
		etag,
		"*",
		"W/" + etag,
		`"stale-tag", ` + etag,
		`W/"other", W/` + etag + `, "more"`,
	}
	for _, h := range hit {
		if _, _, code := getDigest(t, ts.URL, "d", h); code != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", h, code)
		}
	}
	miss := []string{`"unrelated"`, `W/"unrelated"`, `"a", "b"`}
	for _, h := range miss {
		if _, _, code := getDigest(t, ts.URL, "d", h); code != http.StatusOK {
			t.Errorf("If-None-Match %q: status %d, want 200", h, code)
		}
	}
}

// Pushed peer labels become map keys echoed back through the peers JSON,
// so they must obey the filter-name rule; anything else is 400 before any
// state is touched.
func TestDigestPushLabelValidation(t *testing.T) {
	ts, reg := newRegistryTestServer(t)
	doJSON(t, "PUT", ts.URL+"/v2/filters/d", naiveSpec(1), nil)
	f, err := reg.Get("d")
	if err != nil {
		t.Fatal(err)
	}
	f.Store().Add([]byte("x"))
	env, _, _ := getDigest(t, ts.URL, "d", "")

	bad := []string{
		"a\x01b",                     // control character
		"a b",                        // whitespace
		strings.Repeat("x", 65),      // over the 64-byte bound
		".hidden",                    // leading dot (path-like)
		"../escape",                  // separator characters
		"sib/0",                      // ditto
		"\x7f",                       // DEL
		"ünïcödé",                    // non-ASCII
		"http://10.0.0.2:8379",       // raw URLs are not labels
		strings.Repeat("\x00", 2000), // arbitrary-length control garbage
	}
	for _, label := range bad {
		code, body := pushDigest(t, ts.URL, "d", labelEscape(label), env)
		if code != http.StatusBadRequest {
			t.Errorf("label %q: status %d (%s), want 400", label, code, body)
		}
	}
	// The registry never stored any of them.
	status, err := reg.Peers().status("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(status) != 0 {
		t.Errorf("invalid labels stored: %+v", status)
	}
	// A rule-abiding label still works.
	if code, body := pushDigest(t, ts.URL, "d", "sib-0.a_b", env); code != http.StatusOK {
		t.Errorf("valid label refused: %d (%s)", code, body)
	}
	// Direct (non-HTTP) pushes enforce the same rule.
	if _, err := reg.Peers().Push("d", "bad label", nil); err == nil {
		t.Error("Push accepted an invalid label")
	}
}

// labelEscape query-escapes a label for the ?peer= parameter.
func labelEscape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		fmt.Fprintf(&b, "%%%02X", s[i])
	}
	return b.String()
}

// A failing peer must not cost a fresh TCP dial per refresh tick: the
// fetch path drains the (bounded) error body before closing, so the
// keep-alive connection returns to the pool. Before the fix, any error
// body over the 256-byte message read left unread bytes behind and the
// transport discarded the connection every time.
func TestPeerFetchReusesConnectionOnFailure(t *testing.T) {
	// The failing peer: every digest GET answers 500 with a body larger
	// than the 256-byte error-message read but well under the drain bound.
	errBody := strings.Repeat("e", 4096)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, errBody)
	}))
	t.Cleanup(peer.Close)

	var dials atomic.Int32
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			return (&net.Dialer{}).DialContext(ctx, network, addr)
		},
	}
	t.Cleanup(transport.CloseIdleConnections)

	p := newPeers()
	if err := p.configure(PeerConfig{
		Peers:   []string{peer.URL},
		Refresh: time.Hour, // the loop's first immediate fetch, then nothing
		Client:  &http.Client{Transport: transport, Timeout: 5 * time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.watch("f")

	// Wait out the loop's immediate first fetch so later RefreshNow calls
	// are the only traffic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, err := p.status("f")
		if err != nil {
			t.Fatal(err)
		}
		if len(status) == 1 && status[0].Failures >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("initial peer fetch never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := dials.Load()
	if base < 1 {
		t.Fatalf("no dial recorded for the initial fetch")
	}

	const refreshes = 5
	for i := 0; i < refreshes; i++ {
		if _, err := p.RefreshNow("f"); err != nil {
			t.Fatal(err)
		}
	}
	status, err := p.status("f")
	if err != nil {
		t.Fatal(err)
	}
	if got := status[0].Failures; got != uint64(1+refreshes) {
		t.Fatalf("failures %d, want %d", got, 1+refreshes)
	}
	if extra := dials.Load() - base; extra != 0 {
		t.Errorf("%d refreshes against a failing peer cost %d fresh dials; the keep-alive connection was not reused", refreshes, extra)
	}
}
