package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A failing peer must not cost a fresh TCP dial per refresh tick: the
// fetch path drains the (bounded) error body before closing, so the
// keep-alive connection returns to the pool. Before the fix, any error
// body over the 256-byte message read left unread bytes behind and the
// transport discarded the connection every time.
func TestPeerFetchReusesConnectionOnFailure(t *testing.T) {
	// The failing peer: every digest GET answers 500 with a body larger
	// than the 256-byte error-message read but well under the drain bound.
	errBody := strings.Repeat("e", 4096)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, errBody)
	}))
	t.Cleanup(peer.Close)

	var dials atomic.Int32
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			return (&net.Dialer{}).DialContext(ctx, network, addr)
		},
	}
	t.Cleanup(transport.CloseIdleConnections)

	p := newPeers()
	if err := p.configure(PeerConfig{
		Peers:   []string{peer.URL},
		Refresh: time.Hour, // the loop's first immediate fetch, then nothing
		Client:  &http.Client{Transport: transport, Timeout: 5 * time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.watch("f")

	// Wait out the loop's immediate first fetch so later RefreshNow calls
	// are the only traffic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, err := p.Status("f")
		if err != nil {
			t.Fatal(err)
		}
		if len(status) == 1 && status[0].Failures >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("initial peer fetch never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := dials.Load()
	if base < 1 {
		t.Fatalf("no dial recorded for the initial fetch")
	}

	const refreshes = 5
	for i := 0; i < refreshes; i++ {
		if _, err := p.RefreshNow("f"); err != nil {
			t.Fatal(err)
		}
	}
	status, err := p.Status("f")
	if err != nil {
		t.Fatal(err)
	}
	if got := status[0].Failures; got != uint64(1+refreshes) {
		t.Fatalf("failures %d, want %d", got, 1+refreshes)
	}
	if extra := dials.Load() - base; extra != 0 {
		t.Errorf("%d refreshes against a failing peer cost %d fresh dials; the keep-alive connection was not reused", refreshes, extra)
	}
}
