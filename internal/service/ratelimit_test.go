package service

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// manualClock pins a limiter to a settable instant so token arithmetic is
// exact in tests.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Unix(1_000_000, 0)}
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestLimiter builds a configured limiter on a manual clock.
func newTestLimiter(t *testing.T, cfg RateLimitConfig) (*Limiter, *manualClock) {
	t.Helper()
	l := newLimiter()
	clock := newManualClock()
	l.now = clock.now
	if err := l.configure(cfg); err != nil {
		t.Fatal(err)
	}
	// Tables exist only for published filters; provision the names the
	// tests charge against, as the registry does at publish time.
	for _, f := range []string{"f", "g", "fa", "fb"} {
		l.watch(f)
	}
	return l, clock
}

// The token bucket must be exact: burst spends, per-second refill, a hard
// cap at burst, and Retry-After answers that name the precise deficit.
func TestLimiterTokenBucketExact(t *testing.T) {
	l, clock := newTestLimiter(t, RateLimitConfig{MutationsPerSec: 2, Burst: 4})

	for i := 0; i < 4; i++ {
		if ok, _ := l.Allow("f", "alice", 1); !ok {
			t.Fatalf("allow %d within burst refused", i)
		}
	}
	ok, retry := l.Allow("f", "alice", 1)
	if ok || retry != 500*time.Millisecond {
		t.Fatalf("spent bucket: ok=%v retry=%v, want refused in 500ms", ok, retry)
	}

	// 1s at 2/s refills 2 tokens: a 2-item batch fits, 3 do not.
	clock.advance(time.Second)
	if ok, _ := l.Allow("f", "alice", 2); !ok {
		t.Fatal("refilled tokens not granted")
	}
	if ok, retry := l.Allow("f", "alice", 3); ok || retry != 1500*time.Millisecond {
		t.Fatalf("3-item batch on empty bucket: ok=%v retry=%v, want refused in 1.5s", ok, retry)
	}

	// Refill caps at burst: a long idle stretch earns burst, not rate×dt.
	clock.advance(time.Hour)
	if ok, _ := l.Allow("f", "alice", 4); !ok {
		t.Fatal("full burst after long idle refused")
	}
	if ok, _ := l.Allow("f", "alice", 1); ok {
		t.Fatal("tokens beyond burst were accumulated")
	}

	// A charge larger than the burst can never succeed; the retry answer
	// still names the full deficit's refill time.
	clock.advance(time.Hour)
	if ok, retry := l.Allow("f", "alice", 10); ok || retry != 3*time.Second {
		t.Fatalf("over-burst batch: ok=%v retry=%v, want refused in 3s", ok, retry)
	}

	// Throttled charges consume nothing: the burst is still intact.
	if ok, _ := l.Allow("f", "alice", 4); !ok {
		t.Fatal("refused charge consumed tokens")
	}

	// Budgets are per client and per filter: fresh identities and fresh
	// filters start with a full burst.
	if ok, _ := l.Allow("f", "bob", 4); !ok {
		t.Fatal("second client shares the first client's bucket")
	}
	if ok, _ := l.Allow("g", "alice", 4); !ok {
		t.Fatal("second filter shares the first filter's bucket")
	}
}

func TestLimiterConfigValidation(t *testing.T) {
	bad := []RateLimitConfig{
		{MutationsPerSec: -1},
		{MutationsPerSec: 1, Burst: -2},
		{Burst: 5}, // burst without a rate throttles nothing
		{MutationsPerSec: 1, MaxClients: -3},
	}
	for _, cfg := range bad {
		if err := newLimiter().configure(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	l := newLimiter()
	l.watch("f")
	if err := l.configure(RateLimitConfig{MutationsPerSec: 5}); err != nil {
		t.Fatal(err)
	}
	// Burst defaults to one second of budget...
	if ok, _ := l.Allow("f", "c", 5); !ok {
		t.Error("default burst below one second of budget")
	}
	if ok, _ := l.Allow("f", "c", 1); ok {
		t.Error("default burst above one second of budget")
	}
	// ...and configuration is one-shot.
	if err := l.configure(RateLimitConfig{MutationsPerSec: 1}); err == nil {
		t.Error("reconfiguration accepted")
	}
}

// Without a configured budget the limiter is pure accounting: everything is
// allowed, and the attribution table still fills.
func TestLimiterAccountingOnly(t *testing.T) {
	l := newLimiter()
	l.watch("f")
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("f", "bulk", 10); !ok {
			t.Fatal("accounting-only limiter refused a mutation")
		}
	}
	rep := l.Clients("f")
	if rep.Enabled {
		t.Error("unconfigured limiter reports throttling enabled")
	}
	if len(rep.Clients) != 1 || rep.Clients[0].Client != "bulk" || rep.Clients[0].Allowed != 1000 {
		t.Errorf("accounting table: %+v", rep.Clients)
	}
	st := l.FilterStats("f")
	if st.AllowedMutations != 1000 || st.ThrottledMutations != 0 || st.Clients != 1 {
		t.Errorf("aggregate: %+v", st)
	}
}

// The accounting table is bounded: beyond MaxClients the least-recently
// seen identity is evicted, with its counts folded into the aggregate so
// identity churn loses no attribution total.
func TestLimiterLRUEviction(t *testing.T) {
	l, _ := newTestLimiter(t, RateLimitConfig{MutationsPerSec: 1, Burst: 2, MaxClients: 3})
	for i := 0; i < 3; i++ {
		l.Allow("f", fmt.Sprintf("c%d", i), 1)
	}
	l.Allow("f", "c0", 1) // touch c0: c1 becomes least recent
	l.Allow("f", "c3", 1) // evicts c1
	rep := l.Clients("f")
	if len(rep.Clients) != 3 {
		t.Fatalf("table holds %d clients, want 3", len(rep.Clients))
	}
	for _, cs := range rep.Clients {
		if cs.Client == "c1" {
			t.Error("least-recently-seen client survived eviction")
		}
	}
	if rep.EvictedClients != 1 || rep.EvictedAllowed != 1 {
		t.Errorf("eviction accounting: %+v", rep)
	}
	// The aggregate still totals every mutation ever allowed (5 singles).
	if st := l.FilterStats("f"); st.AllowedMutations != 5 || st.EvictedClients != 1 {
		t.Errorf("aggregate after eviction: %+v", st)
	}

	// Churning many identities through the table keeps it at the cap and
	// preserves the exact total.
	for i := 0; i < 500; i++ {
		l.Allow("f", fmt.Sprintf("spoof-%d", i), 1)
	}
	rep = l.Clients("f")
	if len(rep.Clients) != 3 {
		t.Fatalf("churned table holds %d clients, want 3", len(rep.Clients))
	}
	var live uint64
	for _, cs := range rep.Clients {
		live += cs.Allowed + cs.Throttled
	}
	if total := live + rep.EvictedAllowed + rep.EvictedThrottled; total != 505 {
		t.Errorf("attribution total %d after churn, want 505", total)
	}
}

// Concurrent clients across several filters, with identity churn forcing
// LRU eviction mid-traffic: under -race this exercises every lock, and the
// allowed+throttled totals must exactly equal the charges submitted.
func TestLimiterConcurrentAccounting(t *testing.T) {
	l, _ := newTestLimiter(t, RateLimitConfig{MutationsPerSec: 1000, Burst: 50, MaxClients: 8})
	const (
		goroutines = 8
		perG       = 300
	)
	filters := []string{"fa", "fb"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				filter := filters[i%len(filters)]
				// A stable identity per goroutine plus a churning one, so
				// eviction runs concurrently with charging.
				id := fmt.Sprintf("worker-%d", g)
				if i%5 == 0 {
					id = fmt.Sprintf("churn-%d-%d", g, i)
				}
				l.Allow(filter, id, 1+i%3)
				if i%50 == 0 {
					l.Clients(filter)
					l.FilterStats(filter)
				}
			}
		}(g)
	}
	wg.Wait()
	var want uint64
	for i := 0; i < perG; i++ {
		want += uint64(1 + i%3)
	}
	want *= goroutines
	var got uint64
	for _, f := range filters {
		st := l.FilterStats(f)
		got += st.AllowedMutations + st.ThrottledMutations
	}
	if got != want {
		t.Errorf("accounted %d mutations across filters, charged %d", got, want)
	}
}

// A pathologically small rate must clamp the Retry-After arithmetic
// instead of overflowing time.Duration into nonsense.
func TestRetryAfterClampedForTinyRates(t *testing.T) {
	l, _ := newTestLimiter(t, RateLimitConfig{MutationsPerSec: 1e-12, Burst: 1})
	if ok, _ := l.Allow("f", "c", 1); !ok {
		t.Fatal("burst refused")
	}
	ok, retry := l.Allow("f", "c", 1)
	if ok {
		t.Fatal("second charge allowed")
	}
	if retry <= 0 {
		t.Fatalf("Retry-After overflowed: %v", retry)
	}
	if want := time.Duration(maxRetrySeconds) * time.Second; retry != want {
		t.Errorf("Retry-After %v, want the clamp %v", retry, want)
	}
}
