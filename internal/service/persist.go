package service

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"evilbloom/internal/core"
)

// Per-filter durable store. Each filter registered in a persistent registry
// owns one directory under the data dir:
//
//	<data-dir>/<name>/
//	    meta.json        the filter's full configuration, secrets included
//	    snap-<gen>.evb   snapshot envelope at generation <gen> (tmp+rename)
//	    wal-<gen>.log    append-only operation log of everything after
//	                     snap-<gen>; torn tails are truncated on replay
//
// Generations chain: boot picks the highest generation whose snapshot
// decodes and restores cleanly (a corrupt snapshot falls back to the
// previous one) and replays every surviving log segment from that
// generation upward — segment g ends at exactly the atomic cut where
// snapshot g+1 was taken, so the chain always reconstructs the full state.
// Compaction keeps the previous generation pair around as the fallback and
// deletes anything older.
//
// Log records are length-prefixed and individually checksummed:
//
//	[4-byte LE length of op+item] [1-byte op] [item bytes] [4-byte IEEE CRC of op+item]
//
// A record that is short, oversized, or fails its CRC marks the torn tail
// of a crashed writer: replay truncates the segment at the record boundary
// and recovers the longest valid prefix.
const (
	metaFileName    = "meta.json"
	snapPrefix      = "snap-"
	snapSuffix      = ".evb"
	walPrefix       = "wal-"
	walSuffix       = ".log"
	walRecordAdd    = byte(1)
	walRecordRemove = byte(2)
	// walMaxRecord bounds a record's op+item length on replay. It is far
	// above MaxItemLen so direct (non-HTTP) embedders with longer items
	// still round-trip, while a corrupt length field cannot drive a
	// gigabyte allocation.
	walMaxRecord = 1 << 20
	// flushInterval paces the background writer under SyncInterval and
	// SyncNever.
	flushInterval = 100 * time.Millisecond
	// flushThreshold force-flushes the in-memory buffer mid-interval so an
	// add-batch storm cannot grow it without bound.
	flushThreshold = 1 << 20
)

// ErrNotDurable answers compaction requests against a filter with no
// durable store (the server was started without -data-dir).
var ErrNotDurable = errors.New("service: filter has no durable store (start the server with -data-dir)")

// errDirInitialized marks a createPersister refusal because the directory
// already belongs to a filter. Rollback paths must not delete such a
// directory — it is someone else's durable state, not theirs to clean up.
var errDirInitialized = errors.New("service: filter dir already initialized")

// SyncPolicy selects when the operation log reaches stable storage.
type SyncPolicy int

const (
	// SyncInterval (the default) batches appends in memory and
	// flushes+fsyncs every flushInterval: bounded data loss on power
	// failure, negligible hot-path cost.
	SyncInterval SyncPolicy = iota
	// SyncAlways writes and fsyncs inside every mutation: no loss window,
	// every operation pays a disk round-trip.
	SyncAlways
	// SyncNever writes on the flush interval but never fsyncs; the OS
	// decides when data is durable. Graceful shutdown still flushes and
	// syncs.
	SyncNever
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy resolves "always", "interval" or "never"; the empty string
// is the interval default so flags may omit it.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("service: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// persistedMeta is the meta.json schema: everything needed to rebuild the
// store bit-identically, secrets included — the data directory is the
// server's own trusted storage, with the meta file written 0600.
type persistedMeta struct {
	Version      int    `json:"version"`
	Variant      string `json:"variant"`
	Mode         string `json:"mode"`
	Shards       int    `json:"shards"`
	ShardBits    uint64 `json:"shard_bits"`
	HashCount    int    `json:"hash_count"`
	Seed         uint64 `json:"seed"`
	CounterWidth int    `json:"counter_width,omitempty"`
	Overflow     string `json:"overflow,omitempty"`
	KeyHex       string `json:"key,omitempty"`
	RouteKeyHex  string `json:"route_key"`
}

// metaFromConfig flattens a normalized Config for meta.json.
func metaFromConfig(cfg Config) persistedMeta {
	m := persistedMeta{
		Version:     1,
		Variant:     cfg.Variant.String(),
		Mode:        cfg.Mode.String(),
		Shards:      cfg.Shards,
		ShardBits:   cfg.ShardBits,
		HashCount:   cfg.HashCount,
		Seed:        cfg.Seed,
		RouteKeyHex: hex.EncodeToString(cfg.RouteKey),
	}
	if cfg.Variant == VariantCounting {
		m.CounterWidth = cfg.CounterWidth
		m.Overflow = cfg.Overflow.String()
	}
	if cfg.Mode == ModeHardened {
		m.KeyHex = hex.EncodeToString(cfg.Key)
	}
	return m
}

// config rebuilds the Config a meta file describes.
func (m persistedMeta) config() (Config, error) {
	if m.Version != 1 {
		return Config{}, fmt.Errorf("service: unsupported meta version %d", m.Version)
	}
	variant, err := ParseVariant(m.Variant)
	if err != nil {
		return Config{}, err
	}
	mode, err := ParseMode(m.Mode)
	if err != nil {
		return Config{}, err
	}
	overflow, err := core.ParseOverflowPolicy(m.Overflow)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Variant:      variant,
		Mode:         mode,
		Shards:       m.Shards,
		ShardBits:    m.ShardBits,
		HashCount:    m.HashCount,
		Seed:         m.Seed,
		CounterWidth: m.CounterWidth,
		Overflow:     overflow,
	}
	if cfg.RouteKey, err = hex.DecodeString(m.RouteKeyHex); err != nil {
		return Config{}, fmt.Errorf("service: meta route key: %w", err)
	}
	if m.KeyHex != "" {
		if cfg.Key, err = hex.DecodeString(m.KeyHex); err != nil {
			return Config{}, fmt.Errorf("service: meta index key: %w", err)
		}
	}
	return cfg, nil
}

// Persister is one filter's durable store: the buffered, batched journal
// writer plus the snapshot generation machinery. It implements Journal;
// appends arrive from inside shard critical sections, so everything on that
// path is a short in-memory copy under the persister's own mutex (lock
// order is always shard → persister, shared with compaction, so the pair
// cannot deadlock).
type Persister struct {
	dir    string
	policy SyncPolicy

	mu  sync.Mutex
	buf []byte   // encoded records not yet written to wal
	wal *os.File // current segment, wal-<gen>
	gen uint64
	// err is sticky: after the first I/O failure (or Close) the journal
	// drops appends — memory state stays correct, durability is degraded —
	// and the error surfaces on the next Compact/Close.
	err error

	flusher chan struct{} // closed to stop the background flusher
	done    chan struct{} // closed when the flusher exits
}

var _ Journal = (*Persister)(nil)

// createPersister initializes a filter directory for cfg: meta.json, an
// optional initial snapshot (generation 0) and an empty generation-0 log.
// The directory must not already hold a filter.
func createPersister(dir string, cfg Config, policy SyncPolicy, initialSnap []byte) (*Persister, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("service: creating filter dir: %w", err)
	}
	metaPath := filepath.Join(dir, metaFileName)
	if _, err := os.Stat(metaPath); err == nil {
		return nil, fmt.Errorf("%w: %s", errDirInitialized, dir)
	}
	blob, err := json.MarshalIndent(metaFromConfig(cfg), "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(metaPath, blob, 0o600); err != nil {
		return nil, err
	}
	if initialSnap != nil {
		if err := writeFileAtomic(filepath.Join(dir, snapName(0)), initialSnap, 0o600); err != nil {
			return nil, err
		}
	}
	p := &Persister{dir: dir, policy: policy}
	if p.wal, err = os.OpenFile(filepath.Join(dir, walName(0)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600); err != nil {
		return nil, err
	}
	p.startFlusher()
	return p, nil
}

// openPersister reads an existing filter directory's configuration. Replay
// (restore + log) happens separately via Replay once the caller has built
// the store.
func openPersister(dir string, policy SyncPolicy) (*Persister, Config, error) {
	blob, err := os.ReadFile(filepath.Join(dir, metaFileName))
	if err != nil {
		return nil, Config{}, fmt.Errorf("service: reading filter meta: %w", err)
	}
	var m persistedMeta
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, Config{}, fmt.Errorf("service: parsing filter meta: %w", err)
	}
	cfg, err := m.config()
	if err != nil {
		return nil, Config{}, err
	}
	return &Persister{dir: dir, policy: policy}, cfg, nil
}

// Replay rebuilds s from the directory: restore the newest valid snapshot
// (falling back generation by generation when one is corrupt), replay every
// surviving log segment from that generation upward, truncate any torn
// tail, and leave the journal positioned at the end of the newest segment.
// The caller attaches the journal (SetJournal) only after Replay so
// replayed operations are not re-journaled.
func (p *Persister) Replay(s *Sharded) error {
	snaps, wals, err := p.scanGenerations()
	if err != nil {
		return err
	}
	// Newest restorable snapshot wins; every older one is a fallback.
	replayFrom := uint64(0)
	restored := false
	for i := len(snaps) - 1; i >= 0; i-- {
		gen := snaps[i]
		blob, err := os.ReadFile(filepath.Join(p.dir, snapName(gen)))
		if err == nil {
			err = s.Restore(blob)
		}
		if err == nil {
			replayFrom, restored = gen, true
			break
		}
		fmt.Fprintf(os.Stderr, "service: snapshot generation %d unusable (%v); falling back\n", gen, err)
	}
	if !restored && len(snaps) > 0 {
		// Half-restored stores must not serve; with no usable snapshot the
		// chain can still recover only if generation-0 logs survive.
		if len(wals) == 0 || wals[0] != 0 {
			return fmt.Errorf("service: no snapshot generation is restorable and the log chain does not reach generation 0")
		}
	}
	// Replay the log chain. Segments must be contiguous from replayFrom: a
	// gap means lost operations, which is corruption, not a torn tail.
	last := replayFrom
	for _, gen := range wals {
		if gen < replayFrom {
			continue
		}
		if gen != last && gen != last+1 {
			return fmt.Errorf("service: log chain gap: segment %d follows %d", gen, last)
		}
		complete, err := p.replaySegment(s, gen)
		if err != nil {
			return err
		}
		last = gen
		if !complete {
			break // torn tail truncated; later segments cannot exist honestly
		}
	}
	p.gen = last
	if p.wal, err = os.OpenFile(filepath.Join(p.dir, walName(last)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600); err != nil {
		return err
	}
	p.startFlusher()
	return nil
}

// replaySegment applies one log segment to s, truncating at the first
// invalid record. It reports whether the segment was fully valid.
func (p *Persister) replaySegment(s *Sharded, gen uint64) (complete bool, err error) {
	path := filepath.Join(p.dir, walName(gen))
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return true, nil
		}
		return false, err
	}
	off := 0
	for off < len(data) {
		rec, n := decodeRecord(data[off:])
		if n == 0 {
			// Torn tail: keep the longest valid prefix of the crashed write.
			if err := os.Truncate(path, int64(off)); err != nil {
				return false, fmt.Errorf("service: truncating torn log tail: %w", err)
			}
			return false, nil
		}
		switch rec[0] {
		case walRecordAdd:
			s.Add(rec[1:])
		case walRecordRemove:
			// A removal was journaled only after the live filter accepted
			// it, and replay walks the identical state sequence, so it is
			// re-accepted here; a refusal means the chain is inconsistent.
			if ok, err := s.Remove(rec[1:]); err != nil || !ok {
				return false, fmt.Errorf("service: log replay: removal of %q refused (err=%v) — log disagrees with state", rec[1:], err)
			}
		default:
			if err := os.Truncate(path, int64(off)); err != nil {
				return false, fmt.Errorf("service: truncating torn log tail: %w", err)
			}
			return false, nil
		}
		off += n
	}
	return true, nil
}

// decodeRecord parses one framed record from the head of data, returning
// the op+item bytes and the total framed length, or (nil, 0) when the head
// is not a valid complete record.
func decodeRecord(data []byte) ([]byte, int) {
	if len(data) < 4 {
		return nil, 0
	}
	n := binary.LittleEndian.Uint32(data)
	if n < 1 || n > walMaxRecord {
		return nil, 0
	}
	total := 4 + int(n) + 4
	if len(data) < total {
		return nil, 0
	}
	body := data[4 : 4+n]
	if binary.LittleEndian.Uint32(data[4+n:]) != crc32.ChecksumIEEE(body) {
		return nil, 0
	}
	return body, total
}

// JournalAdd implements Journal.
func (p *Persister) JournalAdd(item []byte) { p.append(walRecordAdd, item) }

// JournalRemove implements Journal.
func (p *Persister) JournalRemove(item []byte) { p.append(walRecordRemove, item) }

// append frames one record into the buffer; SyncAlways drains it to disk
// immediately, the others leave it for the flusher (or the size threshold).
func (p *Persister) append(op byte, item []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	p.buf = binary.LittleEndian.AppendUint32(p.buf, uint32(1+len(item)))
	bodyAt := len(p.buf)
	p.buf = append(p.buf, op)
	p.buf = append(p.buf, item...)
	p.buf = binary.LittleEndian.AppendUint32(p.buf, crc32.ChecksumIEEE(p.buf[bodyAt:]))
	if p.policy == SyncAlways {
		p.flushLocked(true)
	} else if len(p.buf) >= flushThreshold {
		p.flushLocked(false)
	}
}

// flushLocked writes the buffer to the current segment (and fsyncs when
// sync is set). I/O failures stick in p.err.
//
// The write happens inside the journal's critical section by design: the
// durability ordering requires the record to be on disk (SyncAlways) or
// at least framed into the segment before the mutation becomes visible,
// and p.buf/p.wal have no other guard. evillint treats this function as
// the sanctioned sink — every locked caller is covered by this one
// annotation, while any NEW I/O under a lock still fails the build.
//
//lint:allow nolockednetio WAL durability ordering: the append must hit the segment inside the critical section
func (p *Persister) flushLocked(sync bool) {
	if p.err != nil || len(p.buf) == 0 {
		if sync && p.err == nil && p.wal != nil {
			if err := p.wal.Sync(); err != nil {
				p.err = err
			}
		}
		return
	}
	if _, err := p.wal.Write(p.buf); err != nil {
		p.err = err
		return
	}
	p.buf = p.buf[:0]
	if sync {
		if err := p.wal.Sync(); err != nil {
			p.err = err
		}
	}
}

// startFlusher launches the background writer for the buffered policies.
func (p *Persister) startFlusher() {
	if p.policy == SyncAlways {
		return
	}
	p.flusher = make(chan struct{})
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		t := time.NewTicker(flushInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.mu.Lock()
				p.flushLocked(p.policy == SyncInterval)
				p.mu.Unlock()
			case <-p.flusher:
				return
			}
		}
	}()
}

// Compact takes an atomic snapshot of s, installs it as the next
// generation, starts a fresh log segment, and retires everything older than
// the previous generation (which is kept as the corruption fallback). The
// world stops while the snapshot serializes: every shard is write-locked,
// so the snapshot, the old segment's end and the new segment's start are
// one consistent cut.
//
//lint:allow nolockednetio compaction is stop-the-world by contract: the snapshot, segment rotation and retirement must be one cut under every lock
func (p *Persister) Compact(s *Sharded) error {
	s.lockAll()
	defer s.unlockAll()
	blob, err := s.snapshotLocked()
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Complete the old segment first — the fallback chain (previous
	// snapshot + previous segment + new segment) must stay gapless.
	p.flushLocked(true)
	if p.err != nil {
		return fmt.Errorf("service: journal is failed; refusing to compact: %w", p.err)
	}
	newGen := p.gen + 1
	// Order matters for crash- and failure-consistency: the new (empty) log
	// segment must exist before the new snapshot becomes authoritative. If
	// the snapshot landed first and the segment creation failed, journaling
	// would continue into the old segment — which replay skips once a newer
	// snapshot exists — silently dropping every operation after the failed
	// compact. With this order a failure leaves at most a harmless empty
	// segment; replay's chain walks straight through it.
	wal, err := os.OpenFile(filepath.Join(p.dir, walName(newGen)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(p.dir, snapName(newGen)), blob, 0o600); err != nil {
		wal.Close()                                      //nolint:errcheck // discarding the unused segment
		os.Remove(filepath.Join(p.dir, walName(newGen))) //nolint:errcheck
		return err
	}
	p.wal.Close() //nolint:errcheck // already flushed and synced above
	p.wal = wal
	oldGen := p.gen
	p.gen = newGen
	// Retire generations older than the fallback pair.
	if oldGen > 0 {
		for gen := oldGen; gen > 0; gen-- {
			snapGone := os.Remove(filepath.Join(p.dir, snapName(gen-1)))
			walGone := os.Remove(filepath.Join(p.dir, walName(gen-1)))
			if os.IsNotExist(snapGone) && os.IsNotExist(walGone) {
				break
			}
		}
	}
	return nil
}

// Generation returns the current snapshot generation.
func (p *Persister) Generation() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen
}

// Err returns the sticky journal error, if any.
func (p *Persister) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Close stops the flusher, drains and fsyncs the buffer, and closes the
// segment. Further appends are dropped. It returns the first I/O error the
// journal ever hit.
//
//lint:allow nolockednetio shutdown path: the final drain and segment close must exclude concurrent appends
func (p *Persister) Close() error {
	if p.flusher != nil {
		close(p.flusher)
		<-p.done
		p.flusher = nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked(true)
	err := p.err
	if p.wal != nil {
		if cerr := p.wal.Close(); err == nil {
			err = cerr
		}
		p.wal = nil
	}
	if p.err == nil {
		p.err = errors.New("service: journal closed")
	}
	return err
}

// remove deletes the filter's directory (after Close) — the Delete path.
func (p *Persister) remove() error {
	return os.RemoveAll(p.dir)
}

// scanGenerations lists the directory's snapshot and log generations in
// ascending order.
func (p *Persister) scanGenerations() (snaps, wals []uint64, err error) {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if gen, ok := parseGen(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, gen)
		}
		if gen, ok := parseGen(e.Name(), walPrefix, walSuffix); ok {
			wals = append(wals, gen)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

func snapName(gen uint64) string { return fmt.Sprintf("%s%06d%s", snapPrefix, gen, snapSuffix) }
func walName(gen uint64) string  { return fmt.Sprintf("%s%06d%s", walPrefix, gen, walSuffix) }

func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// writeFileAtomic writes data via temp-file + rename + directory sync, so a
// crash leaves either the old file or the new one, never a torn hybrid.
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup on error paths
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close() //nolint:errcheck
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //nolint:errcheck
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //nolint:errcheck
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()  //nolint:errcheck // advisory: rename durability
		d.Close() //nolint:errcheck
	}
	return nil
}
