package service

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"evilbloom/internal/core"
)

// Snapshot envelope: the wire and on-disk format of a whole-store snapshot.
//
// The PR 1/2 snapshot endpoint returned the raw per-shard blobs behind a
// bare shard-count header — no version, no variant, no checksum — so a
// restore could not tell a truncated blob from a complete one, nor a
// counting blob from a bloom one. Every snapshot now travels inside a
// versioned, checksummed envelope (compatibility note: the raw PR 2 format
// is gone; it was never replayable, which is the point of this change):
//
//	offset  size  field
//	0       8     magic "EVBSNAP1"
//	8       2     format version (little-endian, currently 1)
//	10      1     variant (0 bloom, 1 counting, 2 blocked)
//	11      1     mode (0 naive, 1 hardened)
//	12      1     counter width in bits (0 for bloom)
//	13      1     overflow policy (core.OverflowPolicy; 0 for bloom)
//	14      2     reserved (zero)
//	16      8     naive index seed (zero in hardened mode)
//	24      8     shard count
//	32      8     shard size in positions
//	40      8     per-item index count k
//	48      8     payload length in bytes
//	56      16    shard-routing key (naive mode; zero in hardened mode)
//	72      ...   payload: per shard, an 8-byte length then the backend blob
//	72+len  4     IEEE CRC-32 of everything before it
//
// All integers are little-endian. The payload length is fully determined by
// the geometry fields, so a decoder can size-check the envelope before
// touching the payload.
//
// On secrets: a naive filter is, per the paper's threat model, a fully
// public implementation — its seed already ships on the info endpoints, and
// per-shard occupancy is meaningless to a restoring party that cannot
// reproduce the shard routing, so the envelope carries the routing key too;
// a naive snapshot is a complete, self-contained clone. A hardened filter's
// keys never travel: its envelope zeroes the routing-key field and is only
// restorable where the keys live — the server's own data directory.
const (
	snapshotMagic      = "EVBSNAP1"
	snapshotVersion    = 1
	snapshotHeaderLen  = 72
	snapshotTrailerLen = 4
)

// SnapshotVersion is the wire version of the snapshot envelope, served on
// the snapshot endpoint's version header.
const SnapshotVersion = snapshotVersion

// Snapshot envelope errors, matched by the HTTP layer to pick status codes:
// corrupt envelopes are the client's transfer problem (400), mismatches are
// a conflict with the live filter's immutable configuration (409).
var (
	// ErrSnapshotCorrupt marks envelopes that fail structural validation:
	// bad magic, unknown version, impossible lengths, checksum mismatch.
	ErrSnapshotCorrupt = errors.New("service: snapshot corrupt")
	// ErrSnapshotMismatch marks well-formed envelopes whose geometry
	// (variant, mode, shards, shard size, k, counter width, overflow policy
	// or naive seed) does not match the filter being restored.
	ErrSnapshotMismatch = errors.New("service: snapshot does not match filter")
)

// snapshotHeader is the decoded fixed prefix of an envelope.
type snapshotHeader struct {
	variant    Variant
	mode       Mode
	width      int
	overflow   core.OverflowPolicy
	seed       uint64
	shards     int
	shardBits  uint64
	k          int
	payloadLen uint64
	routeKey   [16]byte
}

// headerFor derives the envelope header from a store's configuration.
func (s *Sharded) headerFor(payloadLen int) snapshotHeader {
	h := snapshotHeader{
		variant:    s.variant,
		mode:       s.mode,
		width:      s.width,
		overflow:   s.policy,
		seed:       s.seed,
		shards:     len(s.shards),
		shardBits:  s.mShard,
		k:          s.k,
		payloadLen: uint64(payloadLen),
	}
	if s.mode == ModeNaive {
		copy(h.routeKey[:], s.cfg.RouteKey)
	}
	return h
}

// shardBlobLen returns the exact serialized size of one shard backend under
// the header's geometry — the envelope is fully size-determined, so decoders
// reject truncation and padding before touching any state.
func (h snapshotHeader) shardBlobLen() (uint64, error) {
	switch h.variant {
	case VariantBloom, VariantBlocked:
		// A blocked shard serializes exactly like a bloom one (its size is
		// additionally a multiple of 512, which geometry matching enforces
		// against the live filter).
		words := (h.shardBits + 63) / 64
		return 8 + 8 + 8*words, nil // count, bitset size, packed words
	case VariantCounting:
		words := (h.shardBits*uint64(h.width) + 63) / 64
		return 26 + 8*words, nil // width, policy, m, count, overflows, packed words
	default:
		return 0, fmt.Errorf("%w: unknown variant %d", ErrSnapshotCorrupt, int(h.variant))
	}
}

// expectedPayloadLen returns the exact payload size the header implies.
func (h snapshotHeader) expectedPayloadLen() (uint64, error) {
	blob, err := h.shardBlobLen()
	if err != nil {
		return 0, err
	}
	return uint64(h.shards) * (8 + blob), nil
}

// encode serializes the header into the first snapshotHeaderLen bytes of dst.
func (h snapshotHeader) encode(dst []byte) {
	copy(dst, snapshotMagic)
	binary.LittleEndian.PutUint16(dst[8:], snapshotVersion)
	dst[10] = byte(h.variant)
	dst[11] = byte(h.mode)
	dst[12] = byte(h.width)
	dst[13] = byte(h.overflow)
	dst[14], dst[15] = 0, 0
	binary.LittleEndian.PutUint64(dst[16:], h.seed)
	binary.LittleEndian.PutUint64(dst[24:], uint64(h.shards))
	binary.LittleEndian.PutUint64(dst[32:], h.shardBits)
	binary.LittleEndian.PutUint64(dst[40:], uint64(h.k))
	binary.LittleEndian.PutUint64(dst[48:], h.payloadLen)
	copy(dst[56:72], h.routeKey[:])
}

// decodeSnapshotHeader validates and decodes the fixed prefix. It checks
// structure only; the CRC spans the payload and is verified by
// decodeSnapshot once the whole envelope is in hand.
func decodeSnapshotHeader(hdr []byte) (snapshotHeader, error) {
	var h snapshotHeader
	if len(hdr) < snapshotHeaderLen {
		return h, fmt.Errorf("%w: %d header bytes, need %d", ErrSnapshotCorrupt, len(hdr), snapshotHeaderLen)
	}
	if string(hdr[:8]) != snapshotMagic {
		return h, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != snapshotVersion {
		return h, fmt.Errorf("%w: unsupported snapshot version %d", ErrSnapshotCorrupt, v)
	}
	h = snapshotHeader{
		variant:    Variant(hdr[10]),
		mode:       Mode(hdr[11]),
		width:      int(hdr[12]),
		overflow:   core.OverflowPolicy(hdr[13]),
		seed:       binary.LittleEndian.Uint64(hdr[16:]),
		shards:     int(binary.LittleEndian.Uint64(hdr[24:])),
		shardBits:  binary.LittleEndian.Uint64(hdr[32:]),
		k:          int(binary.LittleEndian.Uint64(hdr[40:])),
		payloadLen: binary.LittleEndian.Uint64(hdr[48:]),
	}
	copy(h.routeKey[:], hdr[56:72])
	if h.shards < 1 || h.shards > MaxShards || h.shardBits == 0 || h.k < 1 || h.k > MaxHashCount {
		return h, fmt.Errorf("%w: impossible geometry (shards=%d, shard_bits=%d, k=%d)",
			ErrSnapshotCorrupt, h.shards, h.shardBits, h.k)
	}
	want, err := h.expectedPayloadLen()
	if err != nil {
		return h, err
	}
	if h.payloadLen != want {
		return h, fmt.Errorf("%w: payload length %d, geometry implies %d", ErrSnapshotCorrupt, h.payloadLen, want)
	}
	return h, nil
}

// decodeSnapshot validates a complete envelope (structure and CRC) and
// returns its header and payload. The payload slice aliases data.
func decodeSnapshot(data []byte) (snapshotHeader, []byte, error) {
	h, err := decodeSnapshotHeader(data)
	if err != nil {
		return h, nil, err
	}
	want := snapshotHeaderLen + int(h.payloadLen) + snapshotTrailerLen
	if len(data) != want {
		return h, nil, fmt.Errorf("%w: envelope is %d bytes, header implies %d", ErrSnapshotCorrupt, len(data), want)
	}
	body := data[:len(data)-snapshotTrailerLen]
	if got, sum := binary.LittleEndian.Uint32(data[len(body):]), crc32.ChecksumIEEE(body); got != sum {
		return h, nil, fmt.Errorf("%w: checksum 0x%08x, computed 0x%08x", ErrSnapshotCorrupt, got, sum)
	}
	return h, body[snapshotHeaderLen:], nil
}

// SnapshotConfig resolves an envelope header into the Config that recreates
// its filter — the PUT-with-snapshot-body path. Only naive-mode snapshots
// are resolvable over the wire: a hardened filter's occupancy is meaningless
// without its server-side keys, which never travel in an envelope, so
// restoring one remotely would produce a filter whose answers are noise.
func SnapshotConfig(hdr []byte) (Config, error) {
	h, err := decodeSnapshotHeader(hdr)
	if err != nil {
		return Config{}, err
	}
	if h.mode == ModeHardened {
		return Config{}, fmt.Errorf("%w: hardened snapshots carry no keys and cannot be restored over the wire (restore from the server's own data directory)", ErrSnapshotMismatch)
	}
	return Config{
		Variant:      h.variant,
		Shards:       h.shards,
		ShardBits:    h.shardBits,
		HashCount:    h.k,
		Mode:         h.mode,
		Seed:         h.seed,
		CounterWidth: h.width,
		Overflow:     h.overflow,
		// The routing key travels with naive snapshots: the per-shard
		// occupancy is only a faithful clone when items route identically.
		RouteKey: bytes.Clone(h.routeKey[:]),
	}, nil
}

// match checks the header against a live store's immutable configuration.
func (s *Sharded) match(h snapshotHeader) error {
	mine := s.headerFor(int(h.payloadLen))
	switch {
	case h.variant != mine.variant:
		return fmt.Errorf("%w: snapshot variant %v, filter is %v", ErrSnapshotMismatch, h.variant, mine.variant)
	case h.mode != mine.mode:
		return fmt.Errorf("%w: snapshot mode %v, filter is %v", ErrSnapshotMismatch, h.mode, mine.mode)
	case h.shards != mine.shards || h.shardBits != mine.shardBits || h.k != mine.k:
		return fmt.Errorf("%w: snapshot geometry %d×%d k=%d, filter is %d×%d k=%d",
			ErrSnapshotMismatch, h.shards, h.shardBits, h.k, mine.shards, mine.shardBits, mine.k)
	case h.width != mine.width:
		return fmt.Errorf("%w: snapshot counter width %d, filter uses %d", ErrSnapshotMismatch, h.width, mine.width)
	case h.overflow != mine.overflow:
		return fmt.Errorf("%w: snapshot overflow policy %v, filter uses %v", ErrSnapshotMismatch, h.overflow, mine.overflow)
	case mine.mode == ModeNaive && h.seed != mine.seed:
		return fmt.Errorf("%w: snapshot seed %d, filter uses %d", ErrSnapshotMismatch, h.seed, mine.seed)
	case mine.mode == ModeNaive && h.routeKey != mine.routeKey:
		return fmt.Errorf("%w: snapshot shard-routing key differs from the filter's", ErrSnapshotMismatch)
	}
	return nil
}

// Snapshot serializes the whole store into a versioned, checksummed envelope
// (see the format comment above). Shards are read-locked one at a time, so
// the result is per-shard consistent rather than a global atomic cut — right
// for backup and digest exchange; the persistence layer's compaction path
// uses the stop-the-world variant instead.
func (s *Sharded) Snapshot() ([]byte, error) {
	return s.snapshot(true)
}

// snapshotLocked is Snapshot for callers already holding every shard's write
// lock (compaction): the result is a true atomic cut.
func (s *Sharded) snapshotLocked() ([]byte, error) {
	return s.snapshot(false)
}

func (s *Sharded) snapshot(lock bool) ([]byte, error) {
	h := s.headerFor(0)
	payloadLen, err := h.expectedPayloadLen()
	if err != nil {
		return nil, err
	}
	out := make([]byte, snapshotHeaderLen, snapshotHeaderLen+int(payloadLen)+snapshotTrailerLen)
	for i := range s.shards {
		sh := &s.shards[i]
		snap, ok := sh.backend.(Snapshotter)
		if !ok {
			return nil, fmt.Errorf("service: %v backend of shard %d cannot snapshot", s.variant, i)
		}
		if lock {
			sh.mu.RLock()
		}
		blob, err := snap.Snapshot()
		if lock {
			sh.mu.RUnlock()
		}
		if err != nil {
			return nil, fmt.Errorf("service: snapshotting shard %d: %w", i, err)
		}
		var sz [8]byte
		binary.LittleEndian.PutUint64(sz[:], uint64(len(blob)))
		out = append(out, sz[:]...)
		out = append(out, blob...)
	}
	h.payloadLen = uint64(len(out) - snapshotHeaderLen)
	if h.payloadLen != payloadLen {
		return nil, fmt.Errorf("service: snapshot payload is %d bytes, geometry implies %d", h.payloadLen, payloadLen)
	}
	h.encode(out[:snapshotHeaderLen])
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out))
	return append(out, crc[:]...), nil
}

// Restore overwrites the store's occupancy state from an envelope written by
// Snapshot on a store of identical configuration. The envelope is fully
// validated (structure, checksum, geometry) before any shard is touched;
// after a mid-restore backend failure — reachable only through a blob whose
// inner framing contradicts its own envelope — the store is half-written and
// must be discarded, which is what every caller does. Incremental shard
// weights are recomputed from the restored backends, so stats stay exact.
func (s *Sharded) Restore(data []byte) error {
	h, payload, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	if err := s.match(h); err != nil {
		return err
	}
	s.lockAll()
	defer s.unlockAll()
	for i := range s.shards {
		if len(payload) < 8 {
			return fmt.Errorf("%w: payload exhausted at shard %d", ErrSnapshotCorrupt, i)
		}
		n := binary.LittleEndian.Uint64(payload)
		payload = payload[8:]
		if n > uint64(len(payload)) {
			return fmt.Errorf("%w: shard %d blob claims %d bytes, %d remain", ErrSnapshotCorrupt, i, n, len(payload))
		}
		sh := &s.shards[i]
		snap, ok := sh.backend.(Snapshotter)
		if !ok {
			return fmt.Errorf("service: %v backend of shard %d cannot restore", s.variant, i)
		}
		if err := snap.Restore(payload[:n]); err != nil {
			return fmt.Errorf("service: restoring shard %d: %w", i, err)
		}
		sh.weight = sh.backend.Weight()
		sh.muts++ // a restore is a mutation: digests of this store are stale now
		payload = payload[n:]
	}
	if len(payload) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrSnapshotCorrupt, len(payload))
	}
	return nil
}
