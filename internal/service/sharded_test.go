package service

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"evilbloom/internal/urlgen"
)

// testConfig returns a small deterministic store config.
func testConfig(mode Mode, shards int) Config {
	return Config{
		Shards:    shards,
		Capacity:  20000,
		TargetFPR: 1.0 / 1024,
		Mode:      mode,
		Seed:      3,
		Key:       []byte("0123456789abcdef"),
		RouteKey:  []byte("fedcba9876543210"),
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSharded(Config{Shards: 3}); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
	if _, err := NewSharded(Config{TargetFPR: 1.5}); err == nil {
		t.Error("FPR above 1 accepted")
	}
	if _, err := NewSharded(Config{Mode: ModeHardened, Key: []byte("short")}); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewSharded(Config{RouteKey: []byte("short")}); err == nil {
		t.Error("short route key accepted")
	}
	s, err := NewSharded(Config{})
	if err != nil {
		t.Fatalf("default config: %v", err)
	}
	if s.Shards() != 8 {
		t.Errorf("default shards = %d, want 8", s.Shards())
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"naive", ModeNaive}, {"hardened", ModeHardened}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseMode("evil"); err == nil {
		t.Error("unknown mode accepted")
	}
}

// Membership must hold regardless of shard routing, in both modes.
func TestAddThenTest(t *testing.T) {
	for _, mode := range []Mode{ModeNaive, ModeHardened} {
		t.Run(mode.String(), func(t *testing.T) {
			s, err := NewSharded(testConfig(mode, 8))
			if err != nil {
				t.Fatal(err)
			}
			gen := urlgen.New(1)
			items := make([][]byte, 2000)
			for i := range items {
				items[i] = gen.Next()
				s.Add(items[i])
			}
			for i, it := range items {
				if !s.Test(it) {
					t.Fatalf("item %d lost (false negative)", i)
				}
			}
			if s.Count() != uint64(len(items)) {
				t.Errorf("Count = %d, want %d", s.Count(), len(items))
			}
		})
	}
}

// The keyed router must spread a uniform workload roughly evenly and must
// depend on the routing key: the same items under a different key land on a
// different shard assignment.
func TestShardRouting(t *testing.T) {
	cfg := testConfig(ModeNaive, 8)
	s, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.RouteKey = []byte("0000000000000000")
	s2, err := NewSharded(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	gen := urlgen.New(7)
	counts := make([]int, s.Shards())
	moved := 0
	const n = 8000
	for i := 0; i < n; i++ {
		it := gen.Next()
		a, b := s.shardFor(it), s2.shardFor(it)
		counts[a]++
		if a != b {
			moved++
		}
		if a != s.shardFor(it) {
			t.Fatal("routing is not deterministic")
		}
	}
	want := n / s.Shards()
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.25*float64(want) {
			t.Errorf("shard %d holds %d of %d items (want ≈%d): router is skewed", i, c, n, want)
		}
	}
	// Under an independent key, 7/8 of items should route elsewhere.
	if moved < n/2 {
		t.Errorf("only %d/%d items moved under a different route key", moved, n)
	}
}

// Batch operations must agree exactly with their singleton counterparts.
func TestBatchMatchesSingleton(t *testing.T) {
	s, err := NewSharded(testConfig(ModeHardened, 4))
	if err != nil {
		t.Fatal(err)
	}
	gen := urlgen.New(2)
	batch := make([][]byte, 500)
	for i := range batch {
		batch[i] = gen.Next()
	}
	s.AddBatch(batch)
	if s.Count() != uint64(len(batch)) {
		t.Fatalf("Count after AddBatch = %d, want %d", s.Count(), len(batch))
	}
	probes := make([][]byte, 0, 1000)
	probes = append(probes, batch[:250]...)
	for i := 0; i < 750; i++ {
		probes = append(probes, gen.Next())
	}
	got := s.TestBatch(nil, probes)
	if len(got) != len(probes) {
		t.Fatalf("TestBatch returned %d results for %d probes", len(got), len(probes))
	}
	for i, p := range probes {
		if got[i] != s.Test(p) {
			t.Errorf("probe %d: batch says %v, singleton says %v", i, got[i], s.Test(p))
		}
	}
	for i := 0; i < 250; i++ {
		if !got[i] {
			t.Errorf("inserted probe %d reported absent", i)
		}
	}
}

// Concurrent mixed add/test traffic across all shards must be race-clean
// (run under -race) and lose no insertions.
func TestConcurrentMixedLoad(t *testing.T) {
	for _, mode := range []Mode{ModeNaive, ModeHardened} {
		t.Run(mode.String(), func(t *testing.T) {
			s, err := NewSharded(testConfig(mode, 8))
			if err != nil {
				t.Fatal(err)
			}
			const workers, perWorker = 8, 500
			var wg sync.WaitGroup
			items := make([][][]byte, workers)
			for w := 0; w < workers; w++ {
				gen := urlgen.New(int64(100 + w))
				items[w] = make([][]byte, perWorker)
				for i := range items[w] {
					items[w][i] = gen.Next()
				}
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					probe := urlgen.New(int64(1000 + w))
					for i, it := range items[w] {
						s.Add(it)
						s.Test(probe.Next())
						if i%50 == 0 {
							s.Stats()
							s.TestBatch(nil, items[w][:10])
						}
					}
				}(w)
			}
			wg.Wait()
			if got := s.Count(); got != workers*perWorker {
				t.Errorf("Count = %d, want %d", got, workers*perWorker)
			}
			for w := 0; w < workers; w++ {
				for i, it := range items[w] {
					if !s.Test(it) {
						t.Fatalf("worker %d item %d lost under concurrency", w, i)
					}
				}
			}
		})
	}
}

func TestStats(t *testing.T) {
	s, err := NewSharded(testConfig(ModeNaive, 4))
	if err != nil {
		t.Fatal(err)
	}
	gen := urlgen.New(3)
	for i := 0; i < 1000; i++ {
		s.Add(gen.Next())
	}
	st := s.Stats()
	if st.Mode != "naive" || st.Shards != 4 || st.Count != 1000 {
		t.Errorf("stats header wrong: %+v", st)
	}
	var weight, count uint64
	for _, ss := range st.PerShard {
		weight += ss.Weight
		count += ss.Count
		if ss.Fill <= 0 || ss.Fill >= 1 {
			t.Errorf("shard %d fill %v out of range", ss.Shard, ss.Fill)
		}
		// The incrementally-tracked weight must equal the ground-truth
		// popcount of the shard's bit vector.
		if actual := s.shards[ss.Shard].backend.Weight(); ss.Weight != actual {
			t.Errorf("shard %d tracked weight %d != popcount %d", ss.Shard, ss.Weight, actual)
		}
	}
	if weight != st.Weight || count != st.Count {
		t.Errorf("per-shard sums (w=%d n=%d) disagree with totals (w=%d n=%d)",
			weight, count, st.Weight, st.Count)
	}
	if st.FPR <= 0 || st.FPR >= 1 {
		t.Errorf("aggregate FPR %v out of range", st.FPR)
	}
	// Sanity: the empirical false-positive rate over fresh probes should be
	// within an order of magnitude of the estimate.
	probes, fps := 20000, 0
	probe := urlgen.New(99)
	for i := 0; i < probes; i++ {
		if s.Test(probe.Next()) {
			fps++
		}
	}
	if emp := float64(fps) / float64(probes); emp > 10*st.FPR+0.01 {
		t.Errorf("empirical FPR %v far above estimate %v", emp, st.FPR)
	}
}

// Hardened shards must not share an index key: an item's positions in one
// shard's family must not replay in another's.
func TestHardenedShardKeysDiffer(t *testing.T) {
	s, err := NewSharded(testConfig(ModeHardened, 4))
	if err != nil {
		t.Fatal(err)
	}
	item := []byte("http://example.com/same-item")
	seen := make(map[string]bool)
	for i := range s.shards {
		idx := s.shards[i].pool.Get().(*scratch).fam.Indexes(nil, item)
		key := fmt.Sprint(idx)
		if seen[key] {
			t.Fatalf("two shards derived identical index sets %v", idx)
		}
		seen[key] = true
	}
}
