// Package bitset provides a dense, fixed-size bit vector used as the
// storage substrate for every Bloom-filter variant in this repository.
//
// The type is deliberately minimal and allocation-conscious: a filter of m
// bits occupies ⌈m/64⌉ machine words. All index arguments are uint64 so
// that reduced hash digests can be used directly; indexes are interpreted
// modulo nothing — callers must reduce before calling (the Bloom layer owns
// the "mod m" step, mirroring the paper's notation where digests are
// reduced once).
//
// Set and Clear report whether they changed the bit, which is what lets the
// attack layer account exactly how many fresh bits a forged item
// contributes (condition 6 of the paper) and lets the service layer track
// Hamming weight incrementally instead of re-scanning the vector.
package bitset
