package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	for _, size := range []uint64{0, 1, 63, 64, 65, 127, 128, 3200} {
		b := New(size)
		if b.Size() != size {
			t.Errorf("size %d: Size() = %d", size, b.Size())
		}
		if w := b.Weight(); w != 0 {
			t.Errorf("size %d: new set weight = %d, want 0", size, w)
		}
		for i := uint64(0); i < size; i++ {
			if b.Test(i) {
				t.Fatalf("size %d: bit %d set in fresh set", size, i)
			}
		}
	}
}

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []uint64{0, 1, 63, 64, 65, 127, 128, 129} {
		if !b.Set(i) {
			t.Errorf("Set(%d) on unset bit reported not fresh", i)
		}
		if b.Set(i) {
			t.Errorf("Set(%d) on set bit reported fresh", i)
		}
		if !b.Test(i) {
			t.Errorf("Test(%d) = false after Set", i)
		}
		if !b.Clear(i) {
			t.Errorf("Clear(%d) on set bit reported not previously set", i)
		}
		if b.Clear(i) {
			t.Errorf("Clear(%d) on cleared bit reported previously set", i)
		}
		if b.Test(i) {
			t.Errorf("Test(%d) = true after Clear", i)
		}
	}
}

func TestOutOfRange(t *testing.T) {
	b := New(10)
	if b.Set(10) || b.Set(1<<40) {
		t.Error("Set out of range reported fresh")
	}
	if b.Test(10) || b.Test(1<<40) {
		t.Error("Test out of range reported set")
	}
	if b.Clear(10) {
		t.Error("Clear out of range reported previously set")
	}
	if b.Weight() != 0 {
		t.Errorf("out-of-range ops changed weight to %d", b.Weight())
	}
}

func TestWeightAndFill(t *testing.T) {
	b := New(100)
	for i := uint64(0); i < 100; i += 2 {
		b.Set(i)
	}
	if w := b.Weight(); w != 50 {
		t.Errorf("Weight = %d, want 50", w)
	}
	if f := b.Fill(); f != 0.5 {
		t.Errorf("Fill = %v, want 0.5", f)
	}
	var zero BitSet
	if f := zero.Fill(); f != 0 {
		t.Errorf("zero-size Fill = %v, want 0", f)
	}
}

func TestSupport(t *testing.T) {
	b := New(200)
	want := []uint64{0, 5, 63, 64, 100, 199}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Support()
	if len(got) != len(want) {
		t.Fatalf("Support len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Support[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSetAllAndReset(t *testing.T) {
	b := New(70) // crosses a word boundary with a partial tail word
	b.SetAll()
	if w := b.Weight(); w != 70 {
		t.Errorf("SetAll weight = %d, want 70", w)
	}
	for i := uint64(0); i < 70; i++ {
		if !b.Test(i) {
			t.Fatalf("bit %d unset after SetAll", i)
		}
	}
	b.Reset()
	if w := b.Weight(); w != 0 {
		t.Errorf("Reset weight = %d, want 0", w)
	}
}

func TestCloneAndEqual(t *testing.T) {
	b := New(128)
	b.Set(3)
	b.Set(77)
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Set(5)
	if b.Equal(c) {
		t.Fatal("mutating clone changed original equality")
	}
	if b.Test(5) {
		t.Fatal("mutating clone mutated original")
	}
	if b.Equal(New(64)) {
		t.Fatal("sets of different sizes reported equal")
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)

	u := a.Clone()
	if err := u.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	for _, i := range []uint64{1, 2, 3} {
		if !u.Test(i) {
			t.Errorf("union missing bit %d", i)
		}
	}
	if u.Weight() != 3 {
		t.Errorf("union weight = %d, want 3", u.Weight())
	}

	in := a.Clone()
	if err := in.IntersectWith(b); err != nil {
		t.Fatal(err)
	}
	if !in.Test(2) || in.Weight() != 1 {
		t.Errorf("intersection = %v, want only bit 2", in.Support())
	}

	if err := a.UnionWith(New(10)); err == nil {
		t.Error("union of mismatched sizes succeeded")
	}
	if err := a.IntersectWith(New(10)); err == nil {
		t.Error("intersection of mismatched sizes succeeded")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, size := range []uint64{0, 1, 64, 65, 762, 3200} {
		b := New(size)
		rng := rand.New(rand.NewSource(int64(size)))
		for i := uint64(0); i < size/3+1; i++ {
			b.Set(uint64(rng.Int63()) % (size + 1))
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("size %d: marshal: %v", size, err)
		}
		var c BitSet
		if err := c.UnmarshalBinary(data); err != nil {
			t.Fatalf("size %d: unmarshal: %v", size, err)
		}
		if !b.Equal(&c) {
			t.Errorf("size %d: round trip mismatch", size)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var b BitSet
	if err := b.UnmarshalBinary(nil); err == nil {
		t.Error("unmarshal of nil succeeded")
	}
	if err := b.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("unmarshal of short header succeeded")
	}
	good, _ := New(100).MarshalBinary()
	if err := b.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("unmarshal of truncated payload succeeded")
	}
}

func TestString(t *testing.T) {
	b := New(4)
	b.Set(1)
	b.Set(3)
	if s := b.String(); s != "0101" {
		t.Errorf("String = %q, want 0101", s)
	}
	big := New(1000)
	big.Set(7)
	if s := big.String(); s != "BitSet{m=1000, W=1}" {
		t.Errorf("large String = %q", s)
	}
}

// Property: Weight equals the length of Support, and every supported index
// tests true while a sample of unsupported indexes tests false.
func TestWeightSupportProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		size := uint64(nRaw)%2048 + 1
		b := New(size)
		rng := rand.New(rand.NewSource(seed))
		inserted := map[uint64]bool{}
		for i := 0; i < int(size)/2; i++ {
			idx := uint64(rng.Int63()) % size
			b.Set(idx)
			inserted[idx] = true
		}
		sup := b.Support()
		if uint64(len(sup)) != b.Weight() || len(sup) != len(inserted) {
			return false
		}
		for _, idx := range sup {
			if !inserted[idx] || !b.Test(idx) {
				return false
			}
		}
		for i := uint64(0); i < size; i++ {
			if !inserted[i] && b.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: marshal/unmarshal is the identity for arbitrary contents.
func TestMarshalProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		size := uint64(nRaw) % 4096
		b := New(size)
		rng := rand.New(rand.NewSource(seed))
		for i := uint64(0); size > 0 && i < size/2; i++ {
			b.Set(uint64(rng.Int63()) % size)
		}
		data, err := b.MarshalBinary()
		if err != nil {
			return false
		}
		var c BitSet
		if err := c.UnmarshalBinary(data); err != nil {
			return false
		}
		return b.Equal(&c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: union weight is bounded by the sum of weights and at least the
// max of the two; intersection weight is bounded by the min.
func TestUnionIntersectWeightProperty(t *testing.T) {
	f := func(seed int64) bool {
		const size = 512
		rng := rand.New(rand.NewSource(seed))
		a, b := New(size), New(size)
		for i := 0; i < 200; i++ {
			a.Set(uint64(rng.Int63()) % size)
			b.Set(uint64(rng.Int63()) % size)
		}
		wa, wb := a.Weight(), b.Weight()
		u := a.Clone()
		if err := u.UnionWith(b); err != nil {
			return false
		}
		in := a.Clone()
		if err := in.IntersectWith(b); err != nil {
			return false
		}
		wu, wi := u.Weight(), in.Weight()
		if wu < wa || wu < wb || wu > wa+wb {
			return false
		}
		if wi > wa || wi > wb {
			return false
		}
		// Inclusion–exclusion: |A∪B| + |A∩B| = |A| + |B|.
		return wu+wi == wa+wb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSet(b *testing.B) {
	s := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set(uint64(i) & (1<<20 - 1))
	}
}

func BenchmarkWeight(b *testing.B) {
	s := New(1 << 20)
	for i := uint64(0); i < 1<<20; i += 3 {
		s.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Weight()
	}
}
