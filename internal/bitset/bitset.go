package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// BitSet is a fixed-size vector of m bits, all initially zero. The zero value
// is an empty, zero-length set; use New to allocate a sized one.
type BitSet struct {
	size  uint64 // number of valid bits
	words []uint64
}

// New returns a BitSet holding size bits, all zero.
func New(size uint64) *BitSet {
	return &BitSet{
		size:  size,
		words: make([]uint64, wordsFor(size)),
	}
}

func wordsFor(size uint64) int {
	return int((size + wordBits - 1) / wordBits)
}

// Size returns the number of bits the set holds (the filter size m).
func (b *BitSet) Size() uint64 { return b.size }

// Set sets bit i to 1. It reports whether the bit was previously unset, which
// lets Bloom filters count newly-set bits without a separate Test call.
// Out-of-range indexes are ignored and report false.
//
//lint:allow atomicpublish plain-write twin of SetAtomic: callers serialize externally and must not expose the set to lock-free readers
func (b *BitSet) Set(i uint64) bool {
	if i >= b.size {
		return false
	}
	w, mask := i/wordBits, uint64(1)<<(i%wordBits)
	fresh := b.words[w]&mask == 0
	b.words[w] |= mask
	return fresh
}

// Clear sets bit i to 0. It reports whether the bit was previously set.
//
//lint:allow atomicpublish plain-write twin: callers serialize externally and must not expose the set to lock-free readers
func (b *BitSet) Clear(i uint64) bool {
	if i >= b.size {
		return false
	}
	w, mask := i/wordBits, uint64(1)<<(i%wordBits)
	was := b.words[w]&mask != 0
	b.words[w] &^= mask
	return was
}

// Test reports whether bit i is set. Out-of-range indexes report false.
func (b *BitSet) Test(i uint64) bool {
	if i >= b.size {
		return false
	}
	return b.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Atomic accessors. A BitSet has no lock of its own; these exist for callers
// that layer their own mutual exclusion over *writes* but want *reads* to
// proceed with no lock at all (the service's lock-free membership path).
// The contract: while any goroutine may call TestAtomic concurrently, all
// mutations must be serialized externally AND must go through the atomic
// write methods — a plain Set racing a TestAtomic is a data race. Writes
// stay single-writer, so the atomic stores need no compare-and-swap.

// SetAtomic is Set with an atomic word store, for bit vectors that are read
// lock-free while a serialized writer mutates them.
func (b *BitSet) SetAtomic(i uint64) bool {
	if i >= b.size {
		return false
	}
	w, mask := i/wordBits, uint64(1)<<(i%wordBits)
	old := atomic.LoadUint64(&b.words[w])
	if old&mask != 0 {
		return false
	}
	atomic.StoreUint64(&b.words[w], old|mask)
	return true
}

// TestAtomic is Test with an atomic word load — safe to call with no lock
// held while a serialized writer uses SetAtomic/StoreFrom.
func (b *BitSet) TestAtomic(i uint64) bool {
	if i >= b.size {
		return false
	}
	return atomic.LoadUint64(&b.words[i/wordBits])&(1<<(i%wordBits)) != 0
}

// StoreFrom overwrites b's contents with o's, word by word with atomic
// stores, without replacing the backing array — so lock-free readers holding
// the old view never observe a torn word or a dangling slice. Sizes must
// match exactly.
func (b *BitSet) StoreFrom(o *BitSet) error {
	if b.size != o.size {
		return fmt.Errorf("bitset: storing %d bits into a %d-bit set", o.size, b.size)
	}
	for i, w := range o.words {
		atomic.StoreUint64(&b.words[i], w)
	}
	return nil
}

// Words returns the number of backing 64-bit words.
func (b *BitSet) Words() int { return len(b.words) }

// Word returns backing word i (bits i*64 … i*64+63, LSB first).
// Out-of-range indexes return 0.
func (b *BitSet) Word(i int) uint64 {
	if i < 0 || i >= len(b.words) {
		return 0
	}
	return b.words[i]
}

// SetWord overwrites backing word i wholesale — the digest-delta apply path,
// which patches only the words a peer reported changed. Bits beyond Size in
// the last word are trimmed so the set stays canonical; out-of-range indexes
// are ignored.
//
//lint:allow atomicpublish plain-write twin: delta application happens on an unpublished working copy, then publishes via StoreFrom
func (b *BitSet) SetWord(i int, w uint64) {
	if i < 0 || i >= len(b.words) {
		return
	}
	b.words[i] = w
	if i == len(b.words)-1 {
		b.trimTail()
	}
}

// Weight returns the Hamming weight w_H(z): the number of set bits.
func (b *BitSet) Weight() uint64 {
	var n int
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return uint64(n)
}

// Fill returns the fraction of set bits W/m, the quantity that drives every
// false-positive estimate in the paper. A zero-size set has fill 0.
func (b *BitSet) Fill() float64 {
	if b.size == 0 {
		return 0
	}
	return float64(b.Weight()) / float64(b.size)
}

// Support returns supp(z): the sorted indexes of all set bits. The slice is
// freshly allocated; mutating it does not affect the set.
func (b *BitSet) Support() []uint64 {
	out := make([]uint64, 0, b.Weight())
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, uint64(wi*wordBits+bit))
			w &= w - 1
		}
	}
	return out
}

// SetAll sets every bit to 1 (a fully saturated filter).
//
//lint:allow atomicpublish plain-write twin: saturation is a test/attack-harness operation on unpublished sets
func (b *BitSet) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trimTail()
}

// Reset clears every bit.
//
//lint:allow atomicpublish plain-write twin: callers serialize externally and must not expose the set to lock-free readers
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trimTail zeroes the unused high bits of the last word so that Weight,
// Equal and serialization stay canonical.
//
//lint:allow atomicpublish internal helper of the plain-write twins; runs only on sets their callers already serialize
func (b *BitSet) trimTail() {
	if rem := b.size % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Clone returns a deep copy.
//
//lint:allow atomicpublish writes land in the freshly allocated copy, which no reader can hold yet
func (b *BitSet) Clone() *BitSet {
	out := &BitSet{size: b.size, words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

// Equal reports whether two sets have identical size and contents.
func (b *BitSet) Equal(o *BitSet) bool {
	if b.size != o.size {
		return false
	}
	for i, w := range b.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// UnionWith ORs o into b. Both sets must have the same size.
//
//lint:allow atomicpublish plain-write twin: digest merges run on unpublished working copies
func (b *BitSet) UnionWith(o *BitSet) error {
	if b.size != o.size {
		return fmt.Errorf("bitset: union of mismatched sizes %d and %d", b.size, o.size)
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
	return nil
}

// IntersectWith ANDs o into b. Both sets must have the same size.
//
//lint:allow atomicpublish plain-write twin: digest merges run on unpublished working copies
func (b *BitSet) IntersectWith(o *BitSet) error {
	if b.size != o.size {
		return fmt.Errorf("bitset: intersection of mismatched sizes %d and %d", b.size, o.size)
	}
	for i, w := range o.words {
		b.words[i] &= w
	}
	return nil
}

// MarshalBinary encodes the set as an 8-byte little-endian size followed by
// the packed words. It implements encoding.BinaryMarshaler; cache digests
// (§7 of the paper) travel between proxies in this form.
func (b *BitSet) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8*len(b.words))
	binary.LittleEndian.PutUint64(out, b.size)
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[8+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary. The receiver
// must be unpublished: decoding replaces the backing words wholesale.
//
//lint:allow atomicpublish decodes into a receiver that must not be visible to lock-free readers yet
func (b *BitSet) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitset: truncated header: %d bytes", len(data))
	}
	size := binary.LittleEndian.Uint64(data)
	want := wordsFor(size)
	if len(data) != 8+8*want {
		return fmt.Errorf("bitset: size %d needs %d payload bytes, have %d", size, 8*want, len(data)-8)
	}
	b.size = size
	b.words = make([]uint64, want)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	b.trimTail()
	return nil
}

// String renders small sets as a 0/1 string (LSB first) and large ones as a
// summary; used by tests and examples, matching the figures in the paper.
func (b *BitSet) String() string {
	if b.size > 128 {
		return fmt.Sprintf("BitSet{m=%d, W=%d}", b.size, b.Weight())
	}
	buf := make([]byte, b.size)
	for i := uint64(0); i < b.size; i++ {
		if b.Test(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
