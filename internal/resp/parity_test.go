package resp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"evilbloom/internal/engine"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
)

// startEngineServer wires a resp.Server over a shared engine on a loopback
// listener, for tests where the RESP plane must share auth and buckets with
// an HTTP codec over the same engine.
func startEngineServer(t *testing.T, eng *engine.Engine) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewEngineServer(eng)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return ln.Addr().String()
}

// parityFixture is one engine fronted by both codecs: the cross-plane
// setting every parity assertion runs against.
type parityFixture struct {
	eng  *engine.Engine
	ts   *httptest.Server
	addr string // RESP
}

func newParityFixture(t *testing.T, rate service.RateLimitConfig) *parityFixture {
	t.Helper()
	reg := service.NewRegistry()
	t.Cleanup(func() { reg.Close() }) //nolint:errcheck // memory-only
	if rate.MutationsPerSec > 0 {
		if err := reg.ConfigureRateLimit(rate); err != nil {
			t.Fatal(err)
		}
	}
	eng := engine.New(reg)
	ts := httptest.NewServer(httpapi.NewEngineServer(eng))
	t.Cleanup(ts.Close)
	return &parityFixture{eng: eng, ts: ts, addr: startEngineServer(t, eng)}
}

func (f *parityFixture) createFilter(t *testing.T, name string, variant service.Variant) {
	t.Helper()
	if _, err := f.eng.CreateFilter(name, service.Config{
		Variant:  variant,
		Shards:   1,
		Capacity: 10000,
	}); err != nil {
		t.Fatal(err)
	}
}

// httpOp posts one item operation and returns the status code and decoded
// error message (empty on success).
func (f *parityFixture) httpOp(t *testing.T, bearer, filter, op string, items ...string) (int, string, http.Header) {
	t.Helper()
	var body []byte
	var err error
	if strings.HasSuffix(op, "-batch") {
		body, err = json.Marshal(map[string]any{"items": items})
	} else {
		body, err = json.Marshal(map[string]string{"item": items[0]})
	}
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, f.ts.URL+"/v2/filters/"+filter+"/"+op, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if bearer != "" {
		req.Header.Set("Authorization", "Bearer "+bearer)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil && resp.StatusCode >= 400 {
		t.Fatalf("%s %s: undecodable error body: %v", op, filter, err)
	}
	return resp.StatusCode, e.Error, resp.Header
}

func (f *parityFixture) respClient(t *testing.T) *Client {
	t.Helper()
	cli, err := Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// The same command matrix through both codecs: each row is one engine
// outcome, and both planes must reach it and render it in their own wire
// vocabulary — the refactor's core claim that no enforcement gap exists
// between the planes for an adversary to pick at.
func TestCrossPlaneParity(t *testing.T) {
	f := newParityFixture(t, service.RateLimitConfig{MutationsPerSec: 0.001, Burst: 8})
	f.createFilter(t, "cnt", service.VariantCounting)
	f.createFilter(t, "web", service.VariantBloom)
	f.createFilter(t, "thr-http", service.VariantCounting)
	f.createFilter(t, "thr-resp", service.VariantCounting)
	f.createFilter(t, "mdel", service.VariantCounting)
	cli := f.respClient(t)
	oversized := strings.Repeat("x", service.MaxItemLen+1)

	// Valid mutation: accepted on both planes with the same semantics
	// (newly-added answers true / :1).
	if code, msg, _ := f.httpOp(t, "", "cnt", "add", "item-a"); code != http.StatusOK {
		t.Errorf("HTTP valid add: %d %q", code, msg)
	}
	if r := do(t, cli, "BF.ADD", "cnt", "item-b"); r.Err() != nil || r.Int != 1 {
		t.Errorf("RESP valid add: %+v", r)
	}

	// Oversized item: refused on both planes. HTTP reaches engine
	// validation (400 naming the limit); RESP's framing layer caps bulk
	// strings at the same MaxItemLen, so the refusal is a protocol error —
	// the same bound enforced one layer earlier, costing the connection.
	code, msg, _ := f.httpOp(t, "", "cnt", "add", oversized)
	if code != http.StatusBadRequest || !strings.Contains(msg, fmt.Sprint(service.MaxItemLen)) {
		t.Errorf("HTTP oversized: %d %q", code, msg)
	}
	if r := do(t, cli, "BF.ADD", "cnt", oversized); !strings.HasPrefix(r.Str, "ERR Protocol error") {
		t.Errorf("RESP oversized: %+v", r)
	}
	cli = f.respClient(t) // the protocol error closed the connection

	// Empty item: engine validation on both planes, same message.
	if code, msg, _ := f.httpOp(t, "", "cnt", "add", ""); code != http.StatusBadRequest ||
		!strings.Contains(msg, "empty item") {
		t.Errorf("HTTP empty item: %d %q", code, msg)
	}
	if r := do(t, cli, "BF.ADD", "cnt", ""); r.Str != "ERR empty item" {
		t.Errorf("RESP empty item: %+v", r)
	}

	// Unknown filter: KindNotFound — HTTP 404, RESP -ERR naming the filter.
	if code, msg, _ := f.httpOp(t, "", "ghost", "add", "x"); code != http.StatusNotFound {
		t.Errorf("HTTP unknown filter: %d %q", code, msg)
	}
	if r := do(t, cli, "BF.ADD", "ghost", "x"); r.Err() == nil || !strings.Contains(r.Str, `"ghost"`) {
		t.Errorf("RESP unknown filter: %+v", r)
	}

	// Exhausted budget: KindBusy — HTTP 429 with Retry-After, RESP -BUSY
	// with a parseable retry. Each plane burns its own filter's bucket so
	// the rows stay independent.
	var httpBusy bool
	for i := 0; i < 10; i++ {
		code, msg, hdr := f.httpOp(t, "", "thr-http", "add", fmt.Sprintf("h%d", i))
		if code == http.StatusTooManyRequests {
			httpBusy = true
			if hdr.Get("Retry-After") == "" {
				t.Error("HTTP 429 without Retry-After")
			}
			if !strings.Contains(msg, "mutation budget exhausted") {
				t.Errorf("HTTP busy message: %q", msg)
			}
			break
		}
	}
	if !httpBusy {
		t.Error("HTTP plane never answered 429 past the burst")
	}
	var respBusy bool
	for i := 0; i < 10; i++ {
		r := do(t, cli, "BF.ADD", "thr-resp", fmt.Sprintf("r%d", i))
		if r.IsBusy() {
			respBusy = true
			if _, ok := r.BusyRetrySeconds(); !ok {
				t.Errorf("RESP -BUSY without parseable retry: %q", r.Str)
			}
			break
		}
	}
	if !respBusy {
		t.Error("RESP plane never answered -BUSY past the burst")
	}

	// Capability error: removing from a plain bloom backend — KindCapability
	// — HTTP 405, RESP -WRONGTYPE, the same engine sentinel behind both.
	if code, msg, _ := f.httpOp(t, "", "web", "remove", "x"); code != http.StatusMethodNotAllowed ||
		!strings.Contains(msg, "does not support removal") {
		t.Errorf("HTTP bloom remove: %d %q", code, msg)
	}
	if r := do(t, cli, "CF.DEL", "web", "x"); !strings.HasPrefix(r.Str, "WRONGTYPE ") ||
		!strings.Contains(r.Str, "does not support removal") {
		t.Errorf("RESP bloom remove: %+v", r)
	}

	// Batched remove parity: CF.MDEL is HTTP remove-batch in RESP clothing —
	// same engine command, same per-item answers.
	if code, msg, _ := f.httpOp(t, "", "mdel", "add-batch", "m1", "m2"); code != http.StatusOK {
		t.Errorf("HTTP add-batch: %d %q", code, msg)
	}
	if code, msg, _ := f.httpOp(t, "", "mdel", "remove-batch", "m1", "absent"); code != http.StatusOK {
		t.Errorf("HTTP remove-batch: %d %q", code, msg)
	}
	if r := do(t, cli, "CF.MDEL", "mdel", "m2", "absent"); r.Err() != nil ||
		len(r.Elems) != 2 || r.Elems[0].Int != 1 || r.Elems[1].Int != 0 {
		t.Errorf("CF.MDEL: %+v", r)
	}
}

// An authenticated principal's budget follows the credential: one bucket
// spent from both planes, distinct from the NAT host's anonymous bucket.
func TestAuthBucketSharedAcrossPlanes(t *testing.T) {
	f := newParityFixture(t, service.RateLimitConfig{MutationsPerSec: 0.001, Burst: 2})
	if err := f.eng.ConfigureAuth([]string{"alice:s3cret"}); err != nil {
		t.Fatal(err)
	}
	f.createFilter(t, "shared", service.VariantCounting)
	cli := f.respClient(t)

	// Spend 1 of alice's 2-token burst over HTTP...
	if code, msg, _ := f.httpOp(t, "alice:s3cret", "shared", "add", "h1"); code != http.StatusOK {
		t.Fatalf("HTTP bearer add: %d %q", code, msg)
	}
	// ...and 1 over RESP after AUTH: same bucket, now empty.
	if r := do(t, cli, "AUTH", "alice", "s3cret"); r.Err() != nil {
		t.Fatalf("AUTH: %+v", r)
	}
	if r := do(t, cli, "BF.ADD", "shared", "r1"); r.Err() != nil {
		t.Fatalf("RESP auth'd add: %+v", r)
	}
	if r := do(t, cli, "BF.ADD", "shared", "r2"); !r.IsBusy() {
		t.Errorf("alice's cross-plane bucket should be exhausted, got %+v", r)
	}
	if code, _, _ := f.httpOp(t, "alice:s3cret", "shared", "add", "h2"); code != http.StatusTooManyRequests {
		t.Errorf("HTTP bearer add after cross-plane exhaustion: %d, want 429", code)
	}

	// The NAT host's anonymous bucket is untouched: same machine, no
	// credential, full burst.
	if code, msg, _ := f.httpOp(t, "", "shared", "add", "anon1"); code != http.StatusOK {
		t.Errorf("anonymous add sharing alice's host: %d %q", code, msg)
	}
	anon := f.respClient(t)
	if r := do(t, anon, "BF.ADD", "shared", "anon2"); r.Err() != nil {
		t.Errorf("anonymous RESP add sharing alice's host: %+v", r)
	}

	// Wrong credentials are a refusal, not a fall-through to anonymous.
	if code, _, _ := f.httpOp(t, "alice:wrong", "shared", "add", "h3"); code != http.StatusUnauthorized {
		t.Errorf("bad bearer: %d, want 401", code)
	}
	bad := f.respClient(t)
	if r := do(t, bad, "AUTH", "alice", "wrong"); r.Err() == nil {
		t.Error("RESP AUTH with wrong secret succeeded")
	}
	// HELLO AUTH is the RESP3 spelling of the same handshake.
	h3 := f.respClient(t)
	if r := do(t, h3, "HELLO", "3", "AUTH", "alice", "s3cret"); r.Err() != nil {
		t.Fatalf("HELLO AUTH: %+v", r)
	}
	if r := do(t, h3, "BF.ADD", "shared", "r3"); !r.IsBusy() {
		t.Errorf("HELLO AUTH principal should spend alice's exhausted bucket, got %+v", r)
	}
}
