package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func readOne(t *testing.T, in string) (*Command, error) {
	t.Helper()
	r := NewReader(strings.NewReader(in))
	cmd := &Command{}
	err := r.ReadCommand(cmd)
	return cmd, err
}

func args(cmd *Command) []string {
	out := make([]string, len(cmd.Args))
	for i, a := range cmd.Args {
		out[i] = string(a)
	}
	return out
}

func TestReadCommandValid(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string
	}{
		{"ping", "*1\r\n$4\r\nPING\r\n", []string{"PING"}},
		{"add", "*3\r\n$6\r\nBF.ADD\r\n$7\r\ndefault\r\n$4\r\nitem\r\n", []string{"BF.ADD", "default", "item"}},
		{"empty bulk arg", "*2\r\n$4\r\nECHO\r\n$0\r\n\r\n", []string{"ECHO", ""}},
		{"binary payload", "*2\r\n$4\r\nECHO\r\n$3\r\n\x00\xff\n\r\n", []string{"ECHO", "\x00\xff\n"}},
		{"inline", "PING\r\n", []string{"PING"}},
		{"inline bare newline", "PING\n", []string{"PING"}},
		{"inline with args", "BF.EXISTS default item\r\n", []string{"BF.EXISTS", "default", "item"}},
		{"inline extra whitespace", "  PING \t pong \r\n", []string{"PING", "pong"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd, err := readOne(t, tc.in)
			if err != nil {
				t.Fatalf("ReadCommand(%q): %v", tc.in, err)
			}
			got := args(cmd)
			if len(got) != len(tc.want) {
				t.Fatalf("args = %q, want %q", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("arg %d = %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestReadCommandEmptyLinesAreSkippable(t *testing.T) {
	for _, in := range []string{"\r\n", "\n", "*0\r\n"} {
		cmd, err := readOne(t, in)
		if err != nil {
			t.Fatalf("ReadCommand(%q): %v", in, err)
		}
		if len(cmd.Args) != 0 {
			t.Fatalf("ReadCommand(%q) produced args %q, want none", in, args(cmd))
		}
	}
}

func TestReadCommandProtocolErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"negative multibulk", "*-3\r\n"},
		{"huge multibulk", fmt.Sprintf("*%d\r\n", MaxCommandArgs+1)},
		{"garbage multibulk len", "*abc\r\n"},
		{"missing bulk header", "*1\r\nPING\r\n"},
		{"negative bulk len", "*1\r\n$-1\r\n"},
		{"oversized bulk", fmt.Sprintf("*1\r\n$%d\r\n", MaxArgLen+1)},
		{"garbage bulk len", "*1\r\n$xyz\r\n"},
		{"payload missing terminator", "*1\r\n$4\r\nPINGxx\r\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readOne(t, tc.in)
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("ReadCommand(%q) err = %v, want *ProtocolError", tc.in, err)
			}
		})
	}
}

func TestReadCommandTruncated(t *testing.T) {
	// A stream ending mid-frame is an I/O error (EOF family), never a
	// successful parse and never a panic.
	cases := []string{
		"*2\r\n$4\r\nPING\r\n", // one arg of two
		"*1\r\n$4\r\nPI",       // payload cut short
		"*1\r\n$4\r\nPING",     // missing CRLF
		"*1\r\n",               // no bulk at all
		"*2",                   // header cut mid-line
	}
	for _, in := range cases {
		_, err := readOne(t, in)
		if err == nil {
			t.Fatalf("ReadCommand(%q) succeeded, want error", in)
		}
		var pe *ProtocolError
		if errors.As(err, &pe) {
			continue // a truncation surfacing as framing error is fine
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("ReadCommand(%q) err = %v, want EOF family or protocol error", in, err)
		}
	}
}

func TestReadCommandAggregatePayloadCap(t *testing.T) {
	// Many max-size bulks in one command must trip the aggregate cap, not
	// allocate MaxCommandArgs × MaxArgLen.
	var sb strings.Builder
	n := MaxCommandBytes/MaxArgLen + 2
	fmt.Fprintf(&sb, "*%d\r\n", n)
	payload := strings.Repeat("a", MaxArgLen)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "$%d\r\n%s\r\n", MaxArgLen, payload)
	}
	_, err := readOne(t, sb.String())
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProtocolError for aggregate cap", err)
	}
}

func TestReadCommandPipelinedReuse(t *testing.T) {
	// Sequential commands through ONE Command must reuse its arena; args
	// must be correct each time even as sizes vary.
	in := "*2\r\n$4\r\nECHO\r\n$1\r\na\r\n" +
		"*2\r\n$4\r\nECHO\r\n$26\r\nabcdefghijklmnopqrstuvwxyz\r\n" +
		"*1\r\n$4\r\nPING\r\n"
	r := NewReader(strings.NewReader(in))
	cmd := &Command{}
	want := [][]string{{"ECHO", "a"}, {"ECHO", "abcdefghijklmnopqrstuvwxyz"}, {"PING"}}
	for i, w := range want {
		if err := r.ReadCommand(cmd); err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
		got := args(cmd)
		if fmt.Sprint(got) != fmt.Sprint(w) {
			t.Fatalf("command %d = %q, want %q", i, got, w)
		}
	}
}

func TestReadCommandSteadyStateAllocs(t *testing.T) {
	// The zero-alloc decode claim, as a regression gate: after warm-up,
	// re-reading the same pipelined stream into the same Command must not
	// allocate per command (the reader and arena are reused; only the
	// bytes.Reader reset remains).
	var buf bytes.Buffer
	const n = 200
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "*3\r\n$7\r\nBF.MADD\r\n$5\r\nbench\r\n$24\r\nhttp://e.example/%07d\r\n", i)
	}
	input := buf.Bytes()
	br := bytes.NewReader(input)
	r := NewReader(br)
	cmd := &Command{}
	// Warm-up pass grows the arena and buffers to steady state.
	for i := 0; i < n; i++ {
		if err := r.ReadCommand(cmd); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		br.Reset(input)
		r.br.Reset(br)
		for i := 0; i < n; i++ {
			if err := r.ReadCommand(cmd); err != nil {
				t.Fatal(err)
			}
		}
	})
	if perCmd := allocs / n; perCmd > 0.01 {
		t.Fatalf("steady-state decode allocates %.3f allocs/command, want ~0", perCmd)
	}
}

func TestWriteErrorStripsCRLF(t *testing.T) {
	var buf bytes.Buffer
	w := newTestWriter(&buf)
	writeError(w, "ERR bad\r\nthing")
	w.Flush()
	got := buf.String()
	if got != "-ERR bad  thing\r\n" {
		t.Fatalf("writeError = %q; embedded CRLF must not survive", got)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	// Serialize every reply shape, then decode with the client reader.
	var buf bytes.Buffer
	w := newTestWriter(&buf)
	writeSimple(w, "OK")
	writeError(w, "ERR boom")
	writeInt(w, -42)
	writeBulk(w, []byte("payload"))
	writeArrayHeader(w, 2)
	writeInt(w, 1)
	writeInt(w, 0)
	writeMapHeader(w, 1, 3)
	writeBulkString(w, "k")
	writeBulkFloat(w, 0.25)
	w.Flush()

	cli := NewClient(nopConn{r: bytes.NewReader(buf.Bytes())})
	cli.pending = 5
	checks := []func(r *Reply) error{
		func(r *Reply) error { return expect(r.Type == '+' && r.Str == "OK", "simple", r) },
		func(r *Reply) error { return expect(r.Type == '-' && r.Str == "ERR boom", "error", r) },
		func(r *Reply) error { return expect(r.Type == ':' && r.Int == -42, "int", r) },
		func(r *Reply) error { return expect(r.Type == '$' && r.Str == "payload", "bulk", r) },
		func(r *Reply) error {
			return expect(r.Type == '*' && len(r.Elems) == 2 && r.Elems[0].Int == 1 && r.Elems[1].Int == 0, "array", r)
		},
	}
	for i, check := range checks {
		reply, err := cli.Receive()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if err := check(reply); err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
	}
	// The RESP3 map decodes as 2n flat elements.
	cli.pending = 1
	reply, err := cli.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != '%' || len(reply.Elems) != 2 || reply.Elems[0].Str != "k" {
		t.Fatalf("map reply = %+v", reply)
	}
}

func expect(ok bool, what string, r *Reply) error {
	if !ok {
		return fmt.Errorf("unexpected %s reply: %+v", what, r)
	}
	return nil
}

func newTestWriter(buf *bytes.Buffer) *bufio.Writer { return bufio.NewWriter(buf) }

// nopConn adapts a reader into the net.Conn the client constructor wants;
// writes vanish (these tests only decode).
type nopConn struct{ r io.Reader }

func (c nopConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c nopConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c nopConn) Close() error                       { return nil }
func (c nopConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c nopConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c nopConn) SetDeadline(t time.Time) error      { return nil }
func (c nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (c nopConn) SetWriteDeadline(t time.Time) error { return nil }

func TestBusyRetryParsing(t *testing.T) {
	r := &Reply{Type: '-', Str: `BUSY mutation budget exhausted for filter "default" (1 mutation(s) requested); retry after 42s`}
	if !r.IsBusy() {
		t.Fatal("IsBusy = false")
	}
	secs, ok := r.BusyRetrySeconds()
	if !ok || secs != 42 {
		t.Fatalf("BusyRetrySeconds = %d, %v; want 42, true", secs, ok)
	}
	plain := &Reply{Type: '-', Str: "ERR no such filter"}
	if plain.IsBusy() {
		t.Fatal("plain error reported busy")
	}
}
