package resp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// FuzzReadCommand throws arbitrary byte streams at the command decoder.
// The invariants: it never panics, every yielded command respects the
// argument and size caps, and every rejection is a typed error (a
// *ProtocolError or an I/O error), never silence.
func FuzzReadCommand(f *testing.F) {
	// Valid frames.
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*3\r\n$6\r\nBF.ADD\r\n$7\r\ndefault\r\n$4\r\nitem\r\n"))
	f.Add([]byte("*2\r\n$4\r\nECHO\r\n$0\r\n\r\n"))
	f.Add([]byte("*2\r\n$4\r\nECHO\r\n$3\r\n\x00\xff\n\r\n"))
	// Inline commands.
	f.Add([]byte("PING\r\n"))
	f.Add([]byte("BF.EXISTS default item\n"))
	f.Add([]byte("  spaced \t out \r\n"))
	// Truncations.
	f.Add([]byte("*2\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*1\r\n$4\r\nPI"))
	f.Add([]byte("*1\r\n"))
	f.Add([]byte("*2"))
	// Oversized and malformed lengths.
	f.Add([]byte(fmt.Sprintf("*1\r\n$%d\r\n", MaxArgLen+1)))
	f.Add([]byte(fmt.Sprintf("*%d\r\n", MaxCommandArgs+1)))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("*1\r\n$-1\r\n"))
	f.Add([]byte("*99999999999999999999\r\n"))
	f.Add([]byte("*abc\r\n$def\r\n"))
	// Pipelined mixtures and pathological noise.
	f.Add([]byte("*1\r\n$4\r\nPING\r\n*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("\r\n\r\n*0\r\nPING\r\n"))
	f.Add(bytes.Repeat([]byte("$"), 512))
	f.Add([]byte(strings.Repeat("a", maxInlineLen+2)))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		cmd := &Command{}
		// Bound the walk: a stream of empty lines ("\r\n"...) yields one
		// zero-arg command per line, so cap iterations rather than spinning
		// to EOF on a worst-case input.
		for i := 0; i < 1024; i++ {
			err := r.ReadCommand(cmd)
			if err != nil {
				var pe *ProtocolError
				if errors.As(err, &pe) {
					return // framing lost: a real server hangs up here
				}
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				t.Fatalf("untyped error %T from ReadCommand: %v", err, err)
			}
			if len(cmd.Args) > MaxCommandArgs {
				t.Fatalf("yielded %d args, cap is %d", len(cmd.Args), MaxCommandArgs)
			}
			total := 0
			for _, a := range cmd.Args {
				if len(a) > MaxArgLen {
					t.Fatalf("yielded a %d-byte arg, cap is %d", len(a), MaxArgLen)
				}
				total += len(a)
			}
			if total > MaxCommandBytes {
				t.Fatalf("yielded %d payload bytes, cap is %d", total, MaxCommandBytes)
			}
		}
	})
}
