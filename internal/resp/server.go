package resp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"evilbloom/internal/core"
	"evilbloom/internal/engine"
	"evilbloom/internal/service"
)

// ErrServerClosed is returned by Serve after Shutdown closes the listener.
var ErrServerClosed = errors.New("resp: server closed")

const (
	// maxPipelineBatch caps how many buffered commands one batch executes
	// before replies are flushed, bounding reply latency and per-connection
	// memory under an endless pipelined stream.
	maxPipelineBatch = 512
	// idleTimeout is the per-command read deadline; a connection silent for
	// this long is closed.
	idleTimeout = 5 * time.Minute
	// serverVersion is reported by HELLO.
	serverVersion = "1.0"
)

// Server serves the RESP plane as a codec over the command engine: it
// decodes commands, stages pipelined runs, and renders engine results and
// typed errors as RESP replies. All validation, identity, rate-limit
// charging, and dispatch happen in the engine, so a command spends exactly
// the same budget here as it would over HTTP. The zero value is not usable;
// construct with NewServer or NewEngineServer. Connections start under the
// anonymous RemoteAddr-host identity and may upgrade with AUTH (or HELLO ...
// AUTH) to an authenticated principal whose bucket is shared across planes.
type Server struct {
	eng *engine.Engine

	mu         sync.Mutex
	listeners  map[net.Listener]struct{}
	conns      map[net.Conn]struct{}
	inShutdown atomic.Bool
	connWG     sync.WaitGroup
	connID     atomic.Int64
}

// NewServer returns a server over its own engine wrapping reg. Prefer
// NewEngineServer when the HTTP plane shares the process, so both codecs
// share one auth table.
func NewServer(reg *service.Registry) *Server {
	return NewEngineServer(engine.New(reg))
}

// NewEngineServer returns a server speaking for eng.
func NewEngineServer(eng *engine.Engine) *Server {
	return &Server{
		eng:       eng,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Engine returns the command engine the server fronts.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Serve accepts connections on ln until Shutdown. Like http.Server.Serve it
// blocks, returning ErrServerClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	if s.inShutdown.Load() {
		return ErrServerClosed
	}
	s.mu.Lock()
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.inShutdown.Load() {
				return ErrServerClosed
			}
			return err
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.inShutdown.Load() {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown stops accepting, nudges every live connection off its blocking
// read, and waits for in-flight batches to finish writing. Connections still
// open when ctx expires are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.mu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	for c := range s.conns {
		// Wake readers blocked in ReadCommand; the connection loop sees
		// inShutdown and exits after flushing the batch in progress.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	h := &connHandler{
		srv:       s,
		conn:      conn,
		r:         NewReader(conn),
		w:         bufio.NewWriterSize(conn, 32<<10),
		principal: engine.AnonymousFromRemoteAddr(conn.RemoteAddr().String()),
		proto:     2,
		id:        s.connID.Add(1),
	}
	batch := make([]Command, 0, 16)
	for !h.closing && !s.inShutdown.Load() {
		n, err := h.readBatch(&batch)
		if err != nil {
			var pe *ProtocolError
			if errors.As(err, &pe) {
				// Framing is lost: report once, then close.
				writeError(h.w, "ERR "+pe.Error())
				h.w.Flush()
			}
			return
		}
		h.execBatch(batch[:n])
		if err := h.w.Flush(); err != nil {
			return
		}
	}
	if h.closing {
		h.w.Flush()
	}
}

// readBatch reads one command blocking, then drains every command whose
// bytes are already buffered, up to maxPipelineBatch. Commands keep their
// own arenas, so all of a batch's arguments stay valid through execution.
func (h *connHandler) readBatch(batch *[]Command) (int, error) {
	b := *batch
	n := 0
	h.conn.SetReadDeadline(time.Now().Add(idleTimeout))
	for {
		if n == len(b) {
			b = append(b, Command{})
		}
		if err := h.r.ReadCommand(&b[n]); err != nil {
			*batch = b
			return 0, err
		}
		if len(b[n].Args) > 0 {
			n++
		}
		if n >= maxPipelineBatch || h.r.Buffered() == 0 {
			break
		}
	}
	*batch = b
	return n, nil
}

// connHandler is the per-connection execution state. Scratch slices are
// reused across batches so the steady-state data path does not allocate.
type connHandler struct {
	srv       *Server
	conn      net.Conn
	r         *Reader
	w         *bufio.Writer
	principal engine.Principal
	proto     int
	id        int64
	closing   bool

	g group
}

// pend records one staged command's reply shape: how many of the run's
// items belong to it and whether it replies as an array (the M-variants).
// Charging outcomes live in the run's parallel Chunks.
type pend struct {
	n     int
	multi bool
}

// group is the codec half of run-collapsing: consecutive commands with the
// same kind and filter stage into one engine.Run, executed by ExecuteRun as
// one (or two) store passes with per-command charging.
type group struct {
	filter string
	ref    engine.FilterRef
	run    engine.Run
	pends  []pend
}

func (g *group) reset() {
	g.filter = ""
	g.ref = engine.FilterRef{}
	g.run.Reset(0)
	g.pends = g.pends[:0]
}

// execBatch runs a batch of decoded commands in order. Item commands
// accumulate into the current group; any kind/filter switch, control
// command, or error flushes the group first so replies stay in command
// order.
func (h *connHandler) execBatch(cmds []Command) {
	h.g.reset()
	for i := range cmds {
		args := cmds[i].Args
		name := args[0]
		switch {
		case equalFold(name, "BF.ADD"):
			h.itemCommand(args, engine.RunAdd, false)
		case equalFold(name, "BF.MADD"):
			h.itemCommand(args, engine.RunAdd, true)
		case equalFold(name, "BF.EXISTS"):
			h.itemCommand(args, engine.RunTest, false)
		case equalFold(name, "BF.MEXISTS"):
			h.itemCommand(args, engine.RunTest, true)
		case equalFold(name, "CF.DEL"):
			h.itemCommand(args, engine.RunRemove, false)
		case equalFold(name, "CF.MDEL"):
			h.itemCommand(args, engine.RunRemove, true)
		default:
			h.flushGroup()
			h.controlCommand(args)
		}
	}
	h.flushGroup()
}

// itemCommand validates and stages one BF.ADD/BF.MADD/BF.EXISTS/BF.MEXISTS/
// CF.DEL/CF.MDEL. Arguments past the command word and filter name are the
// items; validation is the engine's, rendered with the -ERR prefix.
func (h *connHandler) itemCommand(args [][]byte, kind engine.RunKind, multi bool) {
	const minArgs = 2 // command word + filter name
	if len(args) < minArgs+1 || (!multi && len(args) != minArgs+1) {
		h.flushGroup()
		h.writeArityError(args[0])
		return
	}
	items := args[minArgs:]
	if err := engine.ValidateItems(items); err != nil {
		h.flushGroup()
		writeError(h.w, "ERR "+err.Error())
		return
	}
	filter := string(args[1])
	if h.g.run.Kind != kind || h.g.filter != filter {
		h.flushGroup()
		ref, err := h.srv.eng.Lookup(filter)
		if err != nil {
			writeError(h.w, fmt.Sprintf("ERR no such filter %q; BF.RESERVE it first", filter))
			return
		}
		h.g.filter = filter
		h.g.ref = ref
		h.g.run.Reset(kind)
	}
	h.g.run.Items = append(h.g.run.Items, items...)
	h.g.run.AddChunk(len(items))
	h.g.pends = append(h.g.pends, pend{n: len(items), multi: multi})
}

// flushGroup executes the staged run through the engine — which charges
// each staged command in order, then makes one batched store pass — and
// renders its replies in command order.
func (h *connHandler) flushGroup() {
	g := &h.g
	if len(g.pends) == 0 {
		return
	}
	h.srv.eng.ExecuteRun(h.principal, g.ref, &g.run)
	idx := 0
	for i, p := range g.pends {
		if c := g.run.Chunks[i]; c.Busy {
			h.writeBusy(g.filter, c)
			continue
		}
		if g.run.Err != nil {
			// Whole-run failure (capability refusal on CF.DEL/CF.MDEL):
			// the bucket was charged before the capability check,
			// mirroring HTTP's charge-then-405 order.
			writeError(h.w, runErrorReply(g.run.Err))
			continue
		}
		if p.multi {
			writeArrayHeader(h.w, p.n)
		}
		for j := 0; j < p.n; j++ {
			writeBool(h.w, g.run.Bools[idx])
			idx++
		}
	}
	g.reset()
}

// runErrorReply maps an engine error to its RESP reply class: capability
// refusals (deleting from a plain bloom backend) render as -WRONGTYPE —
// the operation does not fit the key's type, Redis's own class for that —
// budget exhaustion as -BUSY (the class writeBusy already uses on the
// batched path), and everything else as -ERR. The switch is exhaustive
// over engine.Kind — evillint's errmap analyzer fails the build if a new
// kind lacks an arm, so this plane cannot silently diverge from HTTP's
// status mapping.
func runErrorReply(err error) string {
	switch engine.Classify(err) {
	case engine.KindCapability:
		return "WRONGTYPE " + err.Error()
	case engine.KindBusy:
		return "BUSY " + err.Error()
	case engine.KindInvalid, engine.KindNotFound, engine.KindConflict,
		engine.KindUnauthorized, engine.KindTooLarge, engine.KindInternal:
		return "ERR " + err.Error()
	}
	return "ERR " + err.Error()
}

func writeBool(w *bufio.Writer, v bool) {
	if v {
		w.WriteString(":1\r\n")
	} else {
		w.WriteString(":0\r\n")
	}
}

// writeBusy is the RESP rendering of the HTTP plane's 429 + Retry-After.
func (h *connHandler) writeBusy(filter string, c engine.Chunk) {
	writeError(h.w, fmt.Sprintf(
		"BUSY mutation budget exhausted for filter %q (%d mutation(s) requested); retry after %ds",
		filter, c.N, c.RetrySecs))
}

func (h *connHandler) writeArityError(cmd []byte) {
	writeError(h.w, fmt.Sprintf("ERR wrong number of arguments for '%s' command", lowerASCII(cmd)))
}

// controlCommand executes the non-batchable commands.
func (h *connHandler) controlCommand(args [][]byte) {
	name := args[0]
	switch {
	case equalFold(name, "PING"):
		switch len(args) {
		case 1:
			writeSimple(h.w, "PONG")
		case 2:
			writeBulk(h.w, args[1])
		default:
			h.writeArityError(name)
		}
	case equalFold(name, "ECHO"):
		if len(args) != 2 {
			h.writeArityError(name)
			return
		}
		writeBulk(h.w, args[1])
	case equalFold(name, "AUTH"):
		h.auth(args)
	case equalFold(name, "HELLO"):
		h.hello(args)
	case equalFold(name, "COMMAND"):
		// Enough for redis-cli to start up: COMMAND COUNT answers a number,
		// everything else an empty array (redis-cli degrades gracefully).
		if len(args) >= 2 && equalFold(args[1], "COUNT") {
			writeInt(h.w, 14)
			return
		}
		writeArrayHeader(h.w, 0)
	case equalFold(name, "BF.RESERVE"):
		h.reserve(args)
	case equalFold(name, "BF.INFO"):
		h.info(args)
	case equalFold(name, "QUIT"):
		writeSimple(h.w, "OK")
		h.closing = true
	default:
		writeError(h.w, fmt.Sprintf("ERR unknown command '%s'", lowerASCII(name)))
	}
}

// auth handles AUTH name secret (Redis's two-argument form) and AUTH
// name:secret (the combined token an HTTP bearer carries). On success the
// connection's principal becomes the authenticated client, so every later
// mutation charges the cross-plane "auth:<name>" bucket instead of the
// transport host's.
func (h *connHandler) auth(args [][]byte) {
	if !h.srv.eng.AuthEnabled() {
		writeError(h.w, "ERR Client sent AUTH, but no auth tokens are configured")
		return
	}
	var p engine.Principal
	var err error
	switch len(args) {
	case 2:
		p, err = h.srv.eng.LoginToken(string(args[1]))
	case 3:
		p, err = h.srv.eng.Login(string(args[1]), string(args[2]))
	default:
		h.writeArityError(args[0])
		return
	}
	if err != nil {
		writeError(h.w, "ERR "+err.Error())
		return
	}
	h.principal = p
	writeSimple(h.w, "OK")
}

// hello handles HELLO [proto [AUTH name secret]].
func (h *connHandler) hello(args [][]byte) {
	if len(args) > 2 && !(len(args) == 5 && equalFold(args[2], "AUTH")) {
		writeError(h.w, "ERR unsupported HELLO options; use HELLO [2|3] [AUTH name secret]")
		return
	}
	if len(args) >= 2 {
		v, err := parseInt(args[1])
		if err != nil || (v != 2 && v != 3) {
			writeError(h.w, "NOPROTO unsupported protocol version")
			return
		}
		if len(args) == 5 {
			p, err := h.srv.eng.Login(string(args[3]), string(args[4]))
			if err != nil {
				writeError(h.w, "ERR "+err.Error())
				return
			}
			h.principal = p
		}
		h.proto = int(v)
	}
	writeMapHeader(h.w, 6, h.proto)
	writeBulkString(h.w, "server")
	writeBulkString(h.w, "evilbloom")
	writeBulkString(h.w, "version")
	writeBulkString(h.w, serverVersion)
	writeBulkString(h.w, "proto")
	writeInt(h.w, int64(h.proto))
	writeBulkString(h.w, "id")
	writeInt(h.w, h.id)
	writeBulkString(h.w, "mode")
	writeBulkString(h.w, "standalone")
	writeBulkString(h.w, "role")
	writeBulkString(h.w, "master")
}

// reserve handles BF.RESERVE key error_rate capacity [option value]...
// error_rate and capacity may be 0 to take the service defaults; options
// pin explicit geometry (VARIANT, MODE, SHARDS, SHARDBITS, HASHES, SEED,
// COUNTERWIDTH, OVERFLOW).
func (h *connHandler) reserve(args [][]byte) {
	if len(args) < 4 || len(args)%2 != 0 {
		h.writeArityError(args[0])
		return
	}
	name := string(args[1])
	er, err := strconv.ParseFloat(string(args[2]), 64)
	if err != nil || er < 0 || er >= 1 {
		writeError(h.w, "ERR bad error rate (want a float in [0, 1); 0 takes the default)")
		return
	}
	capacity, err := strconv.ParseUint(string(args[3]), 10, 64)
	if err != nil {
		writeError(h.w, "ERR bad capacity (want a non-negative integer; 0 takes the default)")
		return
	}
	cfg := service.Config{TargetFPR: er, Capacity: capacity}
	for i := 4; i < len(args); i += 2 {
		opt, val := args[i], string(args[i+1])
		switch {
		case equalFold(opt, "VARIANT"):
			if cfg.Variant, err = service.ParseVariant(val); err != nil {
				writeError(h.w, "ERR "+err.Error())
				return
			}
		case equalFold(opt, "MODE"):
			if cfg.Mode, err = service.ParseMode(val); err != nil {
				writeError(h.w, "ERR "+err.Error())
				return
			}
		case equalFold(opt, "SHARDS"):
			if cfg.Shards, err = strconv.Atoi(val); err != nil {
				writeError(h.w, "ERR bad SHARDS value")
				return
			}
		case equalFold(opt, "SHARDBITS"):
			if cfg.ShardBits, err = strconv.ParseUint(val, 10, 64); err != nil {
				writeError(h.w, "ERR bad SHARDBITS value")
				return
			}
		case equalFold(opt, "HASHES"):
			if cfg.HashCount, err = strconv.Atoi(val); err != nil {
				writeError(h.w, "ERR bad HASHES value")
				return
			}
		case equalFold(opt, "SEED"):
			if cfg.Seed, err = strconv.ParseUint(val, 10, 64); err != nil {
				writeError(h.w, "ERR bad SEED value")
				return
			}
		case equalFold(opt, "COUNTERWIDTH"):
			if cfg.CounterWidth, err = strconv.Atoi(val); err != nil {
				writeError(h.w, "ERR bad COUNTERWIDTH value")
				return
			}
		case equalFold(opt, "OVERFLOW"):
			switch val {
			case "wrap":
				cfg.Overflow = core.Wrap
			case "saturate":
				cfg.Overflow = core.Saturate
			default:
				writeError(h.w, "ERR bad OVERFLOW value (want wrap or saturate)")
				return
			}
		case equalFold(opt, "EXPANSION"), equalFold(opt, "NONSCALING"):
			// RedisBloom scaling knobs; this store is fixed-size.
			writeError(h.w, "ERR scaling filters are not supported; size with capacity or SHARDBITS")
			return
		default:
			writeError(h.w, fmt.Sprintf("ERR unknown BF.RESERVE option '%s'", lowerASCII(opt)))
			return
		}
	}
	if _, err := h.srv.eng.CreateFilter(name, cfg); err != nil {
		writeError(h.w, "ERR "+err.Error())
		return
	}
	writeSimple(h.w, "OK")
}

// info handles BF.INFO key: a flat field/value array. Naive filters publish
// their seed — the same deliberate disclosure the HTTP stats endpoint makes,
// which the chosen-insertion adversary needs to build its shadow view.
func (h *connHandler) info(args [][]byte) {
	if len(args) != 2 {
		h.writeArityError(args[0])
		return
	}
	name := string(args[1])
	ref, err := h.srv.eng.Lookup(name)
	if err != nil {
		writeError(h.w, fmt.Sprintf("ERR no such filter %q", name))
		return
	}
	stats := h.srv.eng.Stats(ref).Stats
	desc := h.srv.eng.Describe(ref)
	pairs := 10
	if desc.Seed != nil {
		pairs++
	}
	writeMapHeader(h.w, pairs, h.proto)
	writeBulkString(h.w, "name")
	writeBulkString(h.w, name)
	writeBulkString(h.w, "variant")
	writeBulkString(h.w, stats.Variant)
	writeBulkString(h.w, "mode")
	writeBulkString(h.w, stats.Mode)
	writeBulkString(h.w, "shards")
	writeInt(h.w, int64(stats.Shards))
	writeBulkString(h.w, "k")
	writeInt(h.w, int64(stats.K))
	writeBulkString(h.w, "shard_bits")
	writeInt(h.w, int64(stats.ShardBits))
	writeBulkString(h.w, "count")
	writeInt(h.w, int64(stats.Count))
	writeBulkString(h.w, "weight")
	writeInt(h.w, int64(stats.Weight))
	writeBulkString(h.w, "fill")
	writeBulkFloat(h.w, stats.Fill)
	writeBulkString(h.w, "estimated_fpr")
	writeBulkFloat(h.w, stats.FPR)
	if desc.Seed != nil {
		writeBulkString(h.w, "seed")
		writeInt(h.w, int64(*desc.Seed))
	}
}

// equalFold reports ASCII case-insensitive equality of b against the
// uppercase constant s, without allocating.
func equalFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

func lowerASCII(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}
