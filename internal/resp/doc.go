// Package resp is the binary wire plane of the filter service: a RESP2/RESP3
// (REdis Serialization Protocol) parser, serializer, TCP server and pipelined
// client exposing the service.Registry through redis-cli-compatible commands
// (BF.RESERVE, BF.ADD/BF.MADD, BF.EXISTS/BF.MEXISTS, BF.INFO, CF.DEL, PING,
// HELLO, COMMAND).
//
// The HTTP plane tops out around the cost of one JSON request/response per
// batch; the attacks of GerbetKL15 §4–§7 and the §8 countermeasure ladder are
// only realistic against a query interface running at production rates. This
// plane removes the ceiling two ways:
//
//   - Zero-allocation command decode. Reader.ReadCommand parses into a
//     caller-owned Command whose argument slices alias an arena that is
//     reused across batches — the steady-state hot path allocates nothing.
//     Arguments are valid until the same Command is read into again; the
//     store copies item bytes synchronously (journal append, bit updates),
//     so handing arena-backed slices to AddBatch is safe.
//
//   - Pipelined batch execution. The server reads one command blocking, then
//     drains every fully-buffered command into the same batch. Consecutive
//     commands with the same kind (add / test / remove) and filter collapse
//     into a single AddBatch/TestBatch/RemoveBatch call — one shard-lock
//     acquisition per run instead of per command — and replies are written
//     in command order with a single flush per batch. Interleaved kinds
//     (ADD a; EXISTS a; ADD b) degrade gracefully to runs of length one,
//     preserving strict sequential semantics.
//
// The plane is deliberately NOT a side door around the §8 mitigations:
// mutations spend the same per-client rate-limit buckets as HTTP (identity =
// host part of the connection's remote address, exactly the HTTP fallback
// rule), creation goes through the registry's caps and storage budget, and
// Shutdown drains live connections like http.Server.Shutdown.
//
// Divergences from RedisBloom, chosen for an attack lab: item commands on an
// unknown filter answer an error instead of auto-creating (auto-create would
// bypass explicit geometry and muddy pollution accounting), and BF.RESERVE
// accepts VARIANT/MODE/SHARDS/SHARDBITS/HASHES/SEED/COUNTERWIDTH/OVERFLOW
// option pairs so experiments can pin paper geometries (m=3200, k=4) over
// the wire. Within one pipelined add run, duplicate items each report 1
// ("newly added"): presence is sampled once per run, before the run's
// single AddBatch pass.
package resp
