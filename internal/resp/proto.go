package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"

	"evilbloom/internal/service"
)

// Wire limits. Command-side bounds mirror the HTTP plane so neither plane
// accepts a request the other would refuse: an argument is capped at
// MaxItemLen (items are the longest legitimate argument), a command at
// MaxBatch items plus command word and filter name, and a whole command's
// payload at MaxBodyBytes.
const (
	// MaxCommandArgs bounds the argument count of one command.
	MaxCommandArgs = service.MaxBatch + 8
	// MaxArgLen bounds a single bulk-string argument.
	MaxArgLen = service.MaxItemLen
	// MaxCommandBytes bounds the total payload of one command's arguments.
	MaxCommandBytes = service.MaxBodyBytes
	// maxInlineLen bounds an inline (plain text line) command.
	maxInlineLen = 64 << 10
	// readerBufSize sizes the connection read buffer. Large enough that a
	// typical pipelined burst of small commands is drained in one syscall.
	readerBufSize = 64 << 10
)

// ProtocolError is a malformed-frame error: the server reports it to the
// client with a "-ERR Protocol error" reply and closes the connection
// (recovery is impossible — framing is lost), matching Redis behaviour.
type ProtocolError struct{ msg string }

func (e *ProtocolError) Error() string { return "Protocol error: " + e.msg }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{msg: fmt.Sprintf(format, args...)}
}

// Command is one decoded client command. Args alias an internal arena that
// is overwritten by the next ReadCommand into the same Command, so a batch
// of concurrently-live commands needs one Command value each.
type Command struct {
	Args [][]byte

	arena []byte
	lens  []int
}

// reset prepares the command for reuse, keeping capacity.
func (c *Command) reset() {
	c.Args = c.Args[:0]
	c.arena = c.arena[:0]
	c.lens = c.lens[:0]
}

// grow appends payload space for one argument to the arena and records its
// length. Args are materialized only after all reads: arena growth may
// reallocate, which would invalidate earlier slices.
func (c *Command) grow(n int) []byte {
	off := len(c.arena)
	if cap(c.arena)-off < n {
		next := make([]byte, off, max(off+n, 2*cap(c.arena)))
		copy(next, c.arena)
		c.arena = next
	}
	c.arena = c.arena[:off+n]
	c.lens = append(c.lens, n)
	return c.arena[off : off+n]
}

// materialize rebuilds Args from the recorded lengths once the arena is
// stable.
func (c *Command) materialize() {
	off := 0
	for _, n := range c.lens {
		c.Args = append(c.Args, c.arena[off:off+n])
		off += n
	}
}

// Reader decodes client commands (RESP arrays of bulk strings, plus the
// inline plain text form) from a stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r in a command decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, readerBufSize)}
}

// Buffered reports how many decoded-but-unread bytes are sitting in the read
// buffer — nonzero means at least part of another pipelined command has
// already arrived.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// ReadCommand decodes the next command into cmd, reusing its storage. An
// empty inline line or zero-element array yields len(cmd.Args) == 0; callers
// skip those. Errors are either I/O errors or *ProtocolError.
func (r *Reader) ReadCommand(cmd *Command) error {
	cmd.reset()
	line, err := r.readLine()
	if err != nil {
		return err
	}
	if len(line) == 0 {
		return nil
	}
	if line[0] != '*' {
		return r.readInline(cmd, line)
	}
	n, err := parseInt(line[1:])
	if err != nil {
		return protoErrf("invalid multibulk length")
	}
	if n < 0 || n > MaxCommandArgs {
		return protoErrf("invalid multibulk length")
	}
	total := 0
	for i := int64(0); i < n; i++ {
		hdr, err := r.readLine()
		if err != nil {
			return err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return protoErrf("expected '$', got %q", firstByte(hdr))
		}
		blen, err := parseInt(hdr[1:])
		if err != nil || blen < 0 || blen > MaxArgLen {
			return protoErrf("invalid bulk length")
		}
		total += int(blen)
		if total > MaxCommandBytes {
			return protoErrf("command payload exceeds %d bytes", MaxCommandBytes)
		}
		dst := cmd.grow(int(blen))
		if _, err := io.ReadFull(r.br, dst); err != nil {
			return readErr(err)
		}
		if err := r.expectCRLF(); err != nil {
			return err
		}
	}
	cmd.materialize()
	return nil
}

// readInline decodes the plain text command form ("PING\r\n"), splitting on
// spaces and tabs. Quoting is not supported.
func (r *Reader) readInline(cmd *Command, line []byte) error {
	if len(line) > maxInlineLen {
		return protoErrf("too big inline request")
	}
	// Copy the whole line first: line aliases the bufio buffer.
	buf := cmd.grow(len(line))
	copy(buf, line)
	cmd.lens = cmd.lens[:0]
	start := -1
	for i := 0; i <= len(buf); i++ {
		if i < len(buf) && buf[i] != ' ' && buf[i] != '\t' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			if i-start > MaxArgLen {
				return protoErrf("too big inline argument")
			}
			cmd.Args = append(cmd.Args, buf[start:i])
			if len(cmd.Args) > MaxCommandArgs {
				return protoErrf("too many inline arguments")
			}
			start = -1
		}
	}
	return nil
}

// readLine returns the next line without its terminator. Lines may end in
// \r\n (standard) or bare \n (tolerated for inline use via netcat).
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, bufio.ErrBufferFull) {
			return nil, protoErrf("line too long")
		}
		return nil, readErr(err)
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

func (r *Reader) expectCRLF() error {
	b, err := r.br.ReadByte()
	if err != nil {
		return readErr(err)
	}
	if b == '\n' {
		return nil
	}
	if b != '\r' {
		return protoErrf("expected CRLF after bulk payload")
	}
	if b, err = r.br.ReadByte(); err != nil {
		return readErr(err)
	}
	if b != '\n' {
		return protoErrf("expected CRLF after bulk payload")
	}
	return nil
}

// readErr normalizes a mid-frame EOF: a stream ending inside a command is a
// truncated frame, not a clean close.
func readErr(err error) error {
	if errors.Is(err, io.EOF) && err != io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func firstByte(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return string(b[:1])
}

// parseInt parses a decimal integer from b without allocating.
func parseInt(b []byte) (int64, error) {
	if len(b) == 0 || len(b) > 20 {
		return 0, errors.New("resp: bad integer")
	}
	neg := false
	i := 0
	switch b[0] {
	case '-':
		neg, i = true, 1
	case '+':
		i = 1
	}
	if i == len(b) {
		return 0, errors.New("resp: bad integer")
	}
	var n int64
	for ; i < len(b); i++ {
		d := b[i]
		if d < '0' || d > '9' {
			return 0, errors.New("resp: bad integer")
		}
		if n > (1<<62)/10 {
			return 0, errors.New("resp: integer overflow")
		}
		n = n*10 + int64(d-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Serialization. Reply writers append to a bufio.Writer; the server flushes
// once per pipelined batch. Integer replies go through a small on-stack
// scratch so the hot path (":1\r\n" per item) does not allocate.

var crlf = []byte("\r\n")

func writeSimple(w *bufio.Writer, s string) {
	w.WriteByte('+')
	w.WriteString(s)
	w.Write(crlf)
}

// writeError writes "-<msg>\r\n". Embedded CR/LF would desynchronize the
// stream, so they are replaced.
func writeError(w *bufio.Writer, msg string) {
	w.WriteByte('-')
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c == '\r' || c == '\n' {
			c = ' '
		}
		w.WriteByte(c)
	}
	w.Write(crlf)
}

func writeInt(w *bufio.Writer, n int64) {
	var scratch [24]byte
	b := append(scratch[:0], ':')
	b = strconv.AppendInt(b, n, 10)
	b = append(b, '\r', '\n')
	w.Write(b)
}

func writeBulk(w *bufio.Writer, payload []byte) {
	var scratch [24]byte
	b := append(scratch[:0], '$')
	b = strconv.AppendInt(b, int64(len(payload)), 10)
	b = append(b, '\r', '\n')
	w.Write(b)
	w.Write(payload)
	w.Write(crlf)
}

func writeBulkString(w *bufio.Writer, s string) {
	var scratch [24]byte
	b := append(scratch[:0], '$')
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, '\r', '\n')
	w.Write(b)
	w.WriteString(s)
	w.Write(crlf)
}

func writeBulkFloat(w *bufio.Writer, f float64) {
	writeBulkString(w, strconv.FormatFloat(f, 'g', -1, 64))
}

func writeArrayHeader(w *bufio.Writer, n int) {
	var scratch [24]byte
	b := append(scratch[:0], '*')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '\r', '\n')
	w.Write(b)
}

// writeMapHeader writes a RESP3 map header, degrading to a flat array of
// 2n elements on RESP2 connections.
func writeMapHeader(w *bufio.Writer, pairs int, proto int) {
	if proto >= 3 {
		var scratch [24]byte
		b := append(scratch[:0], '%')
		b = strconv.AppendInt(b, int64(pairs), 10)
		b = append(b, '\r', '\n')
		w.Write(b)
		return
	}
	writeArrayHeader(w, 2*pairs)
}

// writeCommand serializes a client command: an array of bulk strings.
func writeCommand(w *bufio.Writer, args [][]byte) {
	writeArrayHeader(w, len(args))
	for _, a := range args {
		writeBulk(w, a)
	}
}
