package resp

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"evilbloom/internal/httpapi"
	"evilbloom/internal/service"
)

// startServer wires a resp.Server over reg on a loopback listener and
// returns its address. Cleanup shuts the server down and asserts Serve
// returned ErrServerClosed.
func startServer(t *testing.T, reg *service.Registry) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return ln.Addr().String()
}

func newTestRegistry(t *testing.T) *service.Registry {
	t.Helper()
	reg := service.NewRegistry()
	t.Cleanup(func() { reg.Close() })
	return reg
}

// do sends one command and returns its reply; transport failure is fatal.
func do(t *testing.T, cli *Client, args ...string) *Reply {
	t.Helper()
	reply, err := cli.Do(args...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return reply
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	cli, err := DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// The full command surface against a live server: creation, single and
// batched mutation with newly-added semantics, probes, introspection,
// protocol negotiation, and the counting filter's remove path.
func TestServerCommandSurface(t *testing.T) {
	reg := newTestRegistry(t)
	addr := startServer(t, reg)
	cli := dialTest(t, addr)

	if r := do(t, cli, "PING"); r.Type != '+' || r.Str != "PONG" {
		t.Fatalf("PING = %+v", r)
	}
	if r := do(t, cli, "PING", "hey"); r.Str != "hey" {
		t.Fatalf("PING hey = %+v", r)
	}
	if r := do(t, cli, "ECHO", "payload"); r.Str != "payload" {
		t.Fatalf("ECHO = %+v", r)
	}

	// BF.RESERVE with pinned geometry; re-reserving the same name errors.
	if r := do(t, cli, "BF.RESERVE", "web", "0", "0", "SHARDS", "1", "SHARDBITS", "4096", "HASHES", "4", "SEED", "7"); r.Str != "OK" {
		t.Fatalf("BF.RESERVE = %+v", r)
	}
	if r := do(t, cli, "BF.RESERVE", "web", "0", "0"); r.Err() == nil {
		t.Fatalf("duplicate BF.RESERVE succeeded: %+v", r)
	}

	// BF.ADD: 1 on first insert, 0 on repeat.
	if r := do(t, cli, "BF.ADD", "web", "http://a.example/"); r.Int != 1 {
		t.Fatalf("first BF.ADD = %+v", r)
	}
	if r := do(t, cli, "BF.ADD", "web", "http://a.example/"); r.Int != 0 {
		t.Fatalf("repeat BF.ADD = %+v", r)
	}

	// BF.MADD answers per-item newly-added flags in order.
	r := do(t, cli, "BF.MADD", "web", "http://a.example/", "http://b.example/", "http://c.example/")
	if r.Type != '*' || len(r.Elems) != 3 {
		t.Fatalf("BF.MADD = %+v", r)
	}
	if r.Elems[0].Int != 0 || r.Elems[1].Int != 1 || r.Elems[2].Int != 1 {
		t.Fatalf("BF.MADD flags = %d %d %d, want 0 1 1", r.Elems[0].Int, r.Elems[1].Int, r.Elems[2].Int)
	}

	if r := do(t, cli, "BF.EXISTS", "web", "http://b.example/"); r.Int != 1 {
		t.Fatalf("BF.EXISTS present = %+v", r)
	}
	r = do(t, cli, "BF.MEXISTS", "web", "http://b.example/", "definitely-absent-item")
	if len(r.Elems) != 2 || r.Elems[0].Int != 1 || r.Elems[1].Int != 0 {
		t.Fatalf("BF.MEXISTS = %+v", r)
	}

	// BF.INFO on a naive filter publishes geometry, count, and the seed.
	info := infoMap(t, do(t, cli, "BF.INFO", "web"))
	for k, want := range map[string]string{
		// count tallies insertions performed (5: two BF.ADDs + three MADD
		// items), not distinct items.
		"name": "web", "mode": "naive", "shards": "1", "k": "4", "shard_bits": "4096", "count": "5", "seed": "7",
	} {
		if info[k] != want {
			t.Fatalf("BF.INFO %s = %q, want %q (all: %v)", k, info[k], want, info)
		}
	}

	// HELLO negotiates protocol; bad versions answer -NOPROTO.
	if r := do(t, cli, "HELLO", "3"); r.Err() != nil {
		t.Fatalf("HELLO 3 = %+v", r)
	}
	if r := do(t, cli, "HELLO", "9"); r.Err() == nil || !strings.HasPrefix(r.Str, "NOPROTO") {
		t.Fatalf("HELLO 9 = %+v, want NOPROTO", r)
	}
	if r := do(t, cli, "COMMAND", "COUNT"); r.Type != ':' || r.Int < 1 {
		t.Fatalf("COMMAND COUNT = %+v", r)
	}
	if r := do(t, cli, "COMMAND", "DOCS"); r.Type != '*' || len(r.Elems) != 0 {
		t.Fatalf("COMMAND DOCS = %+v, want empty array", r)
	}

	// CF.DEL on a counting filter removes; on the bloom filter it answers
	// the capability error, mirroring the HTTP plane's 405.
	if r := do(t, cli, "BF.RESERVE", "cnt", "0", "0", "VARIANT", "counting", "SHARDS", "1"); r.Str != "OK" {
		t.Fatalf("counting BF.RESERVE = %+v", r)
	}
	do(t, cli, "BF.ADD", "cnt", "x")
	if r := do(t, cli, "CF.DEL", "cnt", "x"); r.Int != 1 {
		t.Fatalf("CF.DEL present = %+v", r)
	}
	if r := do(t, cli, "BF.EXISTS", "cnt", "x"); r.Int != 0 {
		t.Fatalf("after CF.DEL item still present: %+v", r)
	}
	if r := do(t, cli, "CF.DEL", "web", "http://a.example/"); r.Err() == nil {
		t.Fatalf("CF.DEL on bloom filter succeeded: %+v", r)
	}

	// QUIT answers OK and the server closes the connection.
	if r := do(t, cli, "QUIT"); r.Str != "OK" {
		t.Fatalf("QUIT = %+v", r)
	}
	cli.Send("PING")
	if err := cli.Flush(); err == nil {
		if _, err := cli.Receive(); err == nil {
			t.Fatal("connection alive after QUIT")
		}
	}
}

// infoMap folds BF.INFO's flat pairs into a map, stringifying values.
func infoMap(t *testing.T, r *Reply) map[string]string {
	t.Helper()
	if r.Err() != nil || len(r.Elems)%2 != 0 {
		t.Fatalf("BF.INFO = %+v", r)
	}
	m := make(map[string]string, len(r.Elems)/2)
	for i := 0; i+1 < len(r.Elems); i += 2 {
		v := r.Elems[i+1]
		if v.Type == ':' {
			m[r.Elems[i].Str] = fmt.Sprint(v.Int)
		} else {
			m[r.Elems[i].Str] = v.Str
		}
	}
	return m
}

// Every malformed command must answer an in-band error reply and leave the
// connection usable for the next command.
func TestServerErrorReplies(t *testing.T) {
	reg := newTestRegistry(t)
	if _, err := reg.Create("web", service.Config{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, reg)
	cli := dialTest(t, addr)

	cases := []struct {
		name string
		cmd  []string
		want string // required substring of the error reply
	}{
		{"unknown command", []string{"GET", "key"}, "unknown command"},
		{"unknown filter", []string{"BF.ADD", "ghost", "item"}, `no such filter "ghost"`},
		{"add arity", []string{"BF.ADD", "web"}, "wrong number of arguments"},
		{"add extra args", []string{"BF.ADD", "web", "a", "b"}, "wrong number of arguments"},
		{"exists arity", []string{"BF.EXISTS", "web"}, "wrong number of arguments"},
		{"info arity", []string{"BF.INFO"}, "wrong number of arguments"},
		{"reserve arity", []string{"BF.RESERVE", "x"}, "wrong number of arguments"},
		{"reserve bad rate", []string{"BF.RESERVE", "x", "1.5", "0"}, "bad error rate"},
		{"reserve bad capacity", []string{"BF.RESERVE", "x", "0", "-3"}, "bad capacity"},
		{"reserve scaling knob", []string{"BF.RESERVE", "x", "0", "0", "EXPANSION", "2"}, "scaling filters are not supported"},
		{"reserve unknown option", []string{"BF.RESERVE", "x", "0", "0", "WAT", "1"}, "unknown BF.RESERVE option"},
		{"empty item", []string{"BF.ADD", "web", ""}, "empty item"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := do(t, cli, tc.cmd...)
			if r.Err() == nil {
				t.Fatalf("%v succeeded: %+v", tc.cmd, r)
			}
			if !strings.Contains(r.Str, tc.want) {
				t.Fatalf("error = %q, want substring %q", r.Str, tc.want)
			}
		})
	}
	// The connection survived all of it.
	if r := do(t, cli, "PING"); r.Str != "PONG" {
		t.Fatalf("PING after errors = %+v", r)
	}
	// A BF.MADD refused for one bad item must not have inserted its other
	// items either (the whole command is rejected before staging).
	do(t, cli, "BF.MADD", "web", "kept")
	r := do(t, cli, "BF.MADD", "web", "partial", "")
	if r.Err() == nil {
		t.Fatalf("batch with empty item accepted: %+v", r)
	}
	if r := do(t, cli, "BF.EXISTS", "web", "partial"); r.Int != 0 {
		t.Fatal("refused command inserted an item before failing")
	}
}

// A deep pipeline of interleaved command kinds, flushed once, must come
// back as one reply per command, in order — the run-batching optimization
// is not allowed to reorder or merge replies.
func TestServerPipelineOrder(t *testing.T) {
	reg := newTestRegistry(t)
	for _, name := range []string{"a", "b"} {
		if _, err := reg.Create(name, service.Config{Shards: 1}); err != nil {
			t.Fatal(err)
		}
	}
	addr := startServer(t, reg)
	cli := dialTest(t, addr)

	const n = 300
	type expect func(r *Reply) error
	var expects []expect
	intIs := func(want int64, what string) expect {
		return func(r *Reply) error {
			if r.Type != ':' || r.Int != want {
				return fmt.Errorf("%s = %+v, want :%d", what, r, want)
			}
			return nil
		}
	}
	for i := 0; i < n; i++ {
		item := fmt.Sprintf("item-%04d", i)
		filter := "a"
		if i%3 == 0 {
			filter = "b" // force filter switches mid-run
		}
		switch i % 5 {
		case 0, 1: // add a fresh item: newly added
			cli.Send("BF.ADD", filter, item)
			expects = append(expects, intIs(1, "BF.ADD "+item))
		case 2: // probe the item just added in this same pipeline
			prev := fmt.Sprintf("item-%04d", i-1)
			cli.Send("BF.EXISTS", filter, prev)
			f := filter
			expects = append(expects, func(r *Reply) error {
				if r.Type != ':' {
					return fmt.Errorf("BF.EXISTS %s/%s = %+v", f, prev, r)
				}
				return nil // presence depends on filter routing; type is the contract
			})
		case 3: // a control command splits the run
			cli.Send("PING")
			expects = append(expects, func(r *Reply) error {
				if r.Str != "PONG" {
					return fmt.Errorf("PING = %+v", r)
				}
				return nil
			})
		case 4: // probe something never inserted
			cli.Send("BF.EXISTS", filter, "never-inserted-"+item)
			expects = append(expects, intIs(0, "absent probe"))
		}
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, exp := range expects {
		r, err := cli.Receive()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if err := exp(r); err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
	}
	if cli.Pending() != 0 {
		t.Fatalf("%d replies unaccounted for", cli.Pending())
	}
}

// Duplicate items within one pipelined run each report newly-added: the
// run executes TestBatch before AddBatch as one pass. This is the
// documented divergence — pin it so a change is deliberate.
func TestServerRunDuplicateSemantics(t *testing.T) {
	reg := newTestRegistry(t)
	if _, err := reg.Create("web", service.Config{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, reg)
	cli := dialTest(t, addr)

	cli.Send("BF.ADD", "web", "dup")
	cli.Send("BF.ADD", "web", "dup")
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	first, err := cli.Receive()
	if err != nil {
		t.Fatal(err)
	}
	second, err := cli.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if first.Int != 1 || second.Int != 1 {
		t.Fatalf("same-run duplicates = %d, %d; the documented semantics report 1, 1", first.Int, second.Int)
	}
	// Across runs the duplicate is visible.
	if r := do(t, cli, "BF.ADD", "web", "dup"); r.Int != 0 {
		t.Fatalf("next-run duplicate = %+v, want :0", r)
	}
}

// The satellite regression: HTTP and RESP mutations spend the SAME
// per-(filter, client) bucket. Exhausting the budget over the HTTP plane
// must surface as -BUSY (with parseable retry seconds) on the RESP plane,
// because both identify the client by RemoteAddr host (127.0.0.1 here).
func TestCrossPlaneRateLimit(t *testing.T) {
	reg := newTestRegistry(t)
	if _, err := reg.Create(service.DefaultFilterName, service.Config{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	const burst = 5
	if err := reg.ConfigureRateLimit(service.RateLimitConfig{MutationsPerSec: 0.1, Burst: burst}); err != nil {
		t.Fatal(err)
	}
	httpSrv := httptest.NewServer(httpapi.NewRegistryServer(reg))
	defer httpSrv.Close()
	respAddr := startServer(t, reg)
	cli := dialTest(t, respAddr)

	// Spend the whole burst over HTTP.
	for i := 0; i < burst; i++ {
		body := fmt.Sprintf(`{"item": "http-%d"}`, i)
		res, err := http.Post(httpSrv.URL+"/v1/add", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("HTTP add %d answered %d, want 200 within burst", i, res.StatusCode)
		}
	}
	// The next HTTP mutation is throttled...
	res, err := http.Post(httpSrv.URL+"/v1/add", "application/json", strings.NewReader(`{"item": "over"}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP over-budget answered %d, want 429", res.StatusCode)
	}
	// ...and so is the RESP mutation: same bucket, no side door.
	r := do(t, cli, "BF.ADD", service.DefaultFilterName, "resp-item")
	if !r.IsBusy() {
		t.Fatalf("RESP add after HTTP exhaustion = %+v, want -BUSY", r)
	}
	secs, ok := r.BusyRetrySeconds()
	if !ok || secs < 1 {
		t.Fatalf("BusyRetrySeconds = %d, %v; want a positive retry hint", secs, ok)
	}
	// The refused mutation was not applied.
	if reply := do(t, cli, "BF.EXISTS", service.DefaultFilterName, "resp-item"); reply.Int != 0 {
		t.Fatal("throttled RESP mutation was applied")
	}
	// Probes are free: reads still flow while the bucket is empty.
	if reply := do(t, cli, "BF.EXISTS", service.DefaultFilterName, "http-0"); reply.Int != 1 {
		t.Fatalf("read path throttled: %+v", reply)
	}
}

// The converse direction: a pipelined RESP burst drains the bucket and the
// HTTP plane sees 429. Also pins per-command charging — a BF.MADD charges
// per item, exactly like an HTTP batch.
func TestCrossPlaneRateLimitRESPFirst(t *testing.T) {
	reg := newTestRegistry(t)
	if _, err := reg.Create(service.DefaultFilterName, service.Config{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if err := reg.ConfigureRateLimit(service.RateLimitConfig{MutationsPerSec: 0.1, Burst: 4}); err != nil {
		t.Fatal(err)
	}
	httpSrv := httptest.NewServer(httpapi.NewRegistryServer(reg))
	defer httpSrv.Close()
	respAddr := startServer(t, reg)
	cli := dialTest(t, respAddr)

	// One 4-item BF.MADD spends the whole burst in a single charge.
	r := do(t, cli, "BF.MADD", service.DefaultFilterName, "a", "b", "c", "d")
	if r.Err() != nil {
		t.Fatalf("BF.MADD within burst = %+v", r)
	}
	// The next RESP mutation is busy; HTTP sees 429 off the same bucket.
	if r := do(t, cli, "BF.ADD", service.DefaultFilterName, "e"); !r.IsBusy() {
		t.Fatalf("RESP over-budget = %+v, want -BUSY", r)
	}
	res, err := http.Post(httpSrv.URL+"/v1/add", "application/json", strings.NewReader(`{"item": "f"}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP after RESP exhaustion answered %d, want 429", res.StatusCode)
	}
}

// Protocol-level garbage gets one -ERR Protocol error reply, then the
// server hangs up — framing is unrecoverable.
func TestServerProtocolErrorCloses(t *testing.T) {
	reg := newTestRegistry(t)
	addr := startServer(t, reg)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("*abc\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	var got []byte
	for {
		n, err := conn.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break // EOF: server closed after the error reply
		}
	}
	if !bytes.HasPrefix(got, []byte("-ERR Protocol error")) {
		t.Fatalf("reply = %q, want -ERR Protocol error...", got)
	}
}

// Shutdown with live idle connections must complete promptly: blocked
// readers are nudged off their read and the wait group drains.
func TestServerShutdownDrainsIdleConns(t *testing.T) {
	reg := newTestRegistry(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	cli, err := DialTimeout(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if reply, err := cli.Do("PING"); err != nil || reply.Str != "PONG" {
		t.Fatalf("PING = %+v, %v", reply, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Shutdown of an idle connection took %v", d)
	}
	if err := <-serveErr; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// New connections are refused after shutdown.
	if _, err := DialTimeout(ln.Addr().String(), time.Second); err == nil {
		t.Fatal("dial succeeded after Shutdown")
	}
}
