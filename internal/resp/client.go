package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Reply is one decoded server reply. Type is the RESP type byte: '+' simple
// string, '-' error, ':' integer, '$' bulk string, '*' array, '%' map
// (delivered as a flat Elems list of 2n entries), ',' double, '_' null.
type Reply struct {
	Type   byte
	Str    string
	Int    int64
	Double float64
	Null   bool
	Elems  []Reply
}

// Err returns the reply as an error when it is an error reply.
func (r *Reply) Err() error {
	if r.Type == '-' {
		return errors.New(r.Str)
	}
	return nil
}

// IsBusy reports whether the reply is the rate-limit refusal (-BUSY ...),
// the RESP rendering of HTTP 429.
func (r *Reply) IsBusy() bool {
	return r.Type == '-' && strings.HasPrefix(r.Str, "BUSY")
}

// BusyRetrySeconds parses the "retry after Ns" tail of a -BUSY reply.
func (r *Reply) BusyRetrySeconds() (int64, bool) {
	const marker = "retry after "
	i := strings.LastIndex(r.Str, marker)
	if !r.IsBusy() || i < 0 {
		return 0, false
	}
	tail := strings.TrimSuffix(r.Str[i+len(marker):], "s")
	secs, err := strconv.ParseInt(tail, 10, 64)
	if err != nil {
		return 0, false
	}
	return secs, true
}

// Client is a pipelined RESP client: queue commands with Send, push them
// with Flush, collect replies in order with Receive. Do is the synchronous
// convenience for control commands. Not safe for concurrent use; attack and
// bench drivers hold one Client per connection.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	pending int
}

// Dial connects to a RESP server at addr (host:port).
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, readerBufSize),
		bw:   bufio.NewWriterSize(conn, 32<<10),
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Pending reports how many queued or in-flight commands still await a
// Receive.
func (c *Client) Pending() int { return c.pending }

// Send queues one command built from string arguments.
func (c *Client) Send(args ...string) {
	writeArrayHeader(c.bw, len(args))
	for _, a := range args {
		writeBulkString(c.bw, a)
	}
	c.pending++
}

// SendArgs queues one command built from byte-slice arguments; the bytes
// are written immediately, so callers may reuse them after the call.
func (c *Client) SendArgs(args [][]byte) {
	writeCommand(c.bw, args)
	c.pending++
}

// SendItems queues "cmd filter item..." without assembling an argument
// slice — the attack and bench hot path.
func (c *Client) SendItems(cmd, filter string, items [][]byte) {
	writeArrayHeader(c.bw, 2+len(items))
	writeBulkString(c.bw, cmd)
	writeBulkString(c.bw, filter)
	for _, it := range items {
		writeBulk(c.bw, it)
	}
	c.pending++
}

// Flush pushes every queued command to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// Receive reads the next reply in order.
func (c *Client) Receive() (*Reply, error) {
	if c.pending == 0 {
		return nil, errors.New("resp: Receive with no pending command")
	}
	r := new(Reply)
	if err := readReply(c.br, r, 0); err != nil {
		return nil, err
	}
	c.pending--
	return r, nil
}

// Do sends one command and waits for its reply, first draining any replies
// still pending from earlier Sends (they are discarded).
func (c *Client) Do(args ...string) (*Reply, error) {
	c.Send(args...)
	if err := c.Flush(); err != nil {
		return nil, err
	}
	var last *Reply
	for c.pending > 0 {
		r, err := c.Receive()
		if err != nil {
			return nil, err
		}
		last = r
	}
	return last, nil
}

// maxReplyDepth bounds nesting when decoding replies — no legitimate server
// reply here nests deeper.
const maxReplyDepth = 8

func readReply(br *bufio.Reader, r *Reply, depth int) error {
	if depth > maxReplyDepth {
		return errors.New("resp: reply nested too deeply")
	}
	line, err := readReplyLine(br)
	if err != nil {
		return err
	}
	if len(line) == 0 {
		return errors.New("resp: empty reply line")
	}
	r.Type = line[0]
	body := line[1:]
	switch r.Type {
	case '+', '-':
		r.Str = string(body)
	case ':':
		r.Int, err = parseInt(body)
		return err
	case ',':
		r.Double, err = strconv.ParseFloat(string(body), 64)
		return err
	case '_':
		r.Null = true
	case '$':
		n, err := parseInt(body)
		if err != nil {
			return err
		}
		if n == -1 {
			r.Null = true
			return nil
		}
		if n < 0 || n > MaxCommandBytes {
			return fmt.Errorf("resp: bad bulk length %d", n)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		r.Str = string(buf[:n])
	case '*', '%', '>':
		n, err := parseInt(body)
		if err != nil {
			return err
		}
		if r.Type == '%' {
			n *= 2
		}
		if n == -1 {
			r.Null = true
			return nil
		}
		if n < 0 || n > int64(MaxCommandArgs)*2 {
			return fmt.Errorf("resp: bad aggregate length %d", n)
		}
		r.Elems = make([]Reply, n)
		for i := range r.Elems {
			if err := readReply(br, &r.Elems[i], depth+1); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("resp: unknown reply type %q", r.Type)
	}
	return nil
}

func readReplyLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// Format renders a reply the way redis-cli does, for the resp-cli
// subcommand and smoke scripts.
func (r *Reply) Format() string {
	var sb strings.Builder
	r.format(&sb, "")
	return sb.String()
}

func (r *Reply) format(sb *strings.Builder, indent string) {
	switch r.Type {
	case '+':
		sb.WriteString(r.Str)
	case '-':
		sb.WriteString("(error) ")
		sb.WriteString(r.Str)
	case ':':
		sb.WriteString("(integer) ")
		sb.WriteString(strconv.FormatInt(r.Int, 10))
	case ',':
		sb.WriteString("(double) ")
		sb.WriteString(strconv.FormatFloat(r.Double, 'g', -1, 64))
	case '_':
		sb.WriteString("(nil)")
	case '$':
		if r.Null {
			sb.WriteString("(nil)")
			return
		}
		sb.WriteString(strconv.Quote(r.Str))
	case '*', '%', '>':
		if len(r.Elems) == 0 {
			sb.WriteString("(empty array)")
			return
		}
		for i := range r.Elems {
			if i > 0 {
				sb.WriteByte('\n')
			}
			sb.WriteString(indent)
			sb.WriteString(strconv.Itoa(i + 1))
			sb.WriteString(") ")
			r.Elems[i].format(sb, indent+"   ")
		}
	}
}
