package resp

import (
	"errors"
	"strings"
	"testing"

	"evilbloom/internal/engine"
	"evilbloom/internal/service"
)

// TestRunErrorReplyKindCoverage pins the kind→reply-class table the
// errmap analyzer keeps exhaustive: capability refusals are -WRONGTYPE,
// budget exhaustion is -BUSY (the class writeBusy already uses on the
// batched path), everything else is -ERR.
func TestRunErrorReplyKindCoverage(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		prefix string
	}{
		{"capability", service.ErrNotRemovable, "WRONGTYPE "},
		{"busy", &engine.BusyError{Filter: "f", N: 1, RetrySecs: 2}, "BUSY "},
		{"conflict", engine.ErrNotInFilter, "ERR "},
		{"invalid", &engine.ItemError{Index: -1, Len: 0}, "ERR "},
		{"not_found", service.ErrFilterNotFound, "ERR "},
		{"internal", errors.New("disk on fire"), "ERR "},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runErrorReply(tc.err)
			if !strings.HasPrefix(got, tc.prefix) {
				t.Errorf("reply %q does not start with %q", got, tc.prefix)
			}
			if !strings.HasSuffix(got, tc.err.Error()) {
				t.Errorf("reply %q does not carry the message %q", got, tc.err.Error())
			}
		})
	}
}
