// Package evilbloom's root benchmark suite regenerates every table and
// figure of the paper's evaluation as testing.B benchmarks:
//
//	Fig 3   BenchmarkFig3PollutionCampaign
//	Fig 5   BenchmarkFig5ForgePollutingURL/f=2^-*
//	Fig 6   BenchmarkFig6ForgeGhostURL/occupation=*
//	Fig 7   BenchmarkFig7DecoyCover
//	Fig 8   BenchmarkFig8DabloomsPollution
//	Fig 9   BenchmarkFig9RecyclingPlan (analytic; cost of the planner itself)
//	Table 1 BenchmarkTable1CandidateEvaluation (the brute-force attack inner loop)
//	Table 2 BenchmarkTable2QueryCost/<hash>/{naive,recycling}
//	§7      BenchmarkSquidExperiment
//	§6.2    BenchmarkOverflowAttackCrafting, BenchmarkInstantSecondPreimage
//
// Ablations (DESIGN.md §4): BenchmarkAblation*.
//
// Service layer (§8 served live): BenchmarkServiceShardedVsSynced compares
// the sharded striped-lock store against the single-mutex Synced wrapper —
// plus the lock-free read path against its RLock baseline and the blocked
// (cache-line-local) variant — under parallel mixed load; internal/service's
// own bench_test.go has the full matrix (stripe counts, hardened hashing,
// monitored workloads).
//
// Results feed the committed BENCH_<date>.json in the same schema the HTTP
// load generator writes:
//
//	go test -bench . -run '^$' | evilbloom bench-import
//	evilbloom bench-verify BENCH_<date>.json
package evilbloom

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"evilbloom/internal/analysis"
	"evilbloom/internal/attack"
	"evilbloom/internal/cachedigest"
	"evilbloom/internal/core"
	"evilbloom/internal/countermeasure"
	"evilbloom/internal/hashes"
	"evilbloom/internal/probcount"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// ---------------------------------------------------------------------------
// Fig 3: the full pollution campaign (m=3200, k=4, 600 chosen insertions).

func BenchmarkFig3PollutionCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := hashes.NewDigester(hashes.SHA256, nil)
		if err != nil {
			b.Fatal(err)
		}
		fam, err := hashes.NewSalted(d, 4, 3200)
		if err != nil {
			b.Fatal(err)
		}
		filter := core.NewBloom(fam)
		adv := attack.NewChosenInsertion(attack.NewBloomView(filter), filter, filter, urlgen.New(int64(i)))
		if _, err := adv.PolluteN(600, 0); err != nil {
			b.Fatal(err)
		}
		if fpr := filter.EstimatedFPR(); math.Abs(fpr-0.3164) > 0.001 {
			b.Fatalf("campaign FPR = %v", fpr)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 5: forging one polluting URL against a pyBloom filter at its design
// load, for each false-positive exponent. ns/op grows exponentially with
// the exponent — the paper's headline shape.

func BenchmarkFig5ForgePollutingURL(b *testing.B) {
	for _, e := range []int{5, 10, 15} { // 2^-20 at full load is > minutes/op
		e := e
		b.Run(fmt.Sprintf("f=2^-%d", e), func(b *testing.B) {
			const capacity = 100000
			filter, err := core.NewPyBloom(capacity, math.Pow(2, -float64(e)))
			if err != nil {
				b.Fatal(err)
			}
			// Load to 50% of capacity with honest URLs: mid-campaign state.
			gen := urlgen.New(1)
			for i := 0; i < capacity/2; i++ {
				filter.Add(gen.Next())
			}
			forger := attack.NewForger(attack.NewPartitionedView(filter), urlgen.New(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := forger.ForgePolluting(0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(forger.Attempts)/float64(b.N), "candidates/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Fig 6: forging one ghost (false-positive) URL at different occupations.

func BenchmarkFig6ForgeGhostURL(b *testing.B) {
	const capacity = 50000
	for _, occPct := range []int{60, 80, 100} { // lower occupations: minutes/op
		occPct := occPct
		b.Run(fmt.Sprintf("occupation=%d%%", occPct), func(b *testing.B) {
			filter, err := core.NewPyBloom(capacity, 1.0/32)
			if err != nil {
				b.Fatal(err)
			}
			gen := urlgen.New(1)
			for i := 0; i < capacity*occPct/100; i++ {
				filter.Add(gen.Next())
			}
			forger := attack.NewForger(attack.NewPartitionedView(filter), urlgen.New(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := forger.ForgeFalsePositive(0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(forger.Attempts)/float64(b.N), "candidates/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Fig 7: covering a ghost URL's bits with decoys.

func BenchmarkFig7DecoyCover(b *testing.B) {
	filter, err := core.NewPyBloom(500, 1.0/32)
	if err != nil {
		b.Fatal(err)
	}
	view := attack.NewPartitionedView(filter)
	ghostGen := urlgen.New(9)
	forger := attack.NewForger(view, urlgen.New(10))
	var idx []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx = view.Indexes(idx[:0], ghostGen.Next())
		if _, err := forger.ForgeDecoySet(idx, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 8: building a fully-polluted Dablooms filter (instant forgery).

func BenchmarkFig8DabloomsPollution(b *testing.B) {
	cfg := analysis.DefaultFig8Config()
	cfg.StageCapacity = 1000
	cfg.Probes = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := analysis.RunFig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.EstimatedF[cfg.Stages] < res.EstimatedF[0] {
			b.Fatal("pollution lowered F")
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 9: the recycling planner (analytic, microseconds).

func BenchmarkFig9RecyclingPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := countermeasure.PlanRecycling(math.Pow(2, -15), 8<<30); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table 1: the attack inner loop — candidate evaluation throughput, which
// converts the analytic probabilities into wall-clock attack cost.

func BenchmarkTable1CandidateEvaluation(b *testing.B) {
	d, err := hashes.NewDigester(hashes.SHA256, nil)
	if err != nil {
		b.Fatal(err)
	}
	fam, err := hashes.NewSalted(d, 4, 3200)
	if err != nil {
		b.Fatal(err)
	}
	filter := core.NewBloom(fam)
	gen := urlgen.New(1)
	for i := 0; i < 300; i++ {
		filter.Add(gen.Next())
	}
	view := attack.NewBloomView(filter)
	probe := urlgen.New(2)
	var idx []uint64
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		idx = view.Indexes(idx[:0], probe.Next())
		sink = sink != attack.IsPolluting(view, idx)
	}
	_ = sink
}

// ---------------------------------------------------------------------------
// Table 2: per-query index-derivation cost, naive (k salted calls) vs
// recycling, for every hash in the paper's table.

func BenchmarkTable2QueryCost(b *testing.B) {
	const capacity = 1000000
	f := math.Pow(2, -10)
	m := core.OptimalM(capacity, f)
	k := core.KForFPR(f)
	item := []byte("0123456789abcdef0123456789abcdef") // 32 bytes, as in the paper
	key := []byte("0123456789abcdef")
	for _, alg := range analysis.Table2Algorithms {
		alg := alg
		var algKey []byte
		if alg.Keyed() {
			algKey = key
		}
		b.Run(alg.String()+"/naive", func(b *testing.B) {
			d, err := hashes.NewDigester(alg, algKey)
			if err != nil {
				b.Fatal(err)
			}
			fam, err := hashes.NewSalted(d, k, m)
			if err != nil {
				b.Fatal(err)
			}
			var idx []uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx = fam.Indexes(idx[:0], item)
			}
		})
		if hashes.DigestCallsFor(alg, k, m) == 0 {
			continue // digest too short to recycle (paper prints "-")
		}
		b.Run(alg.String()+"/recycling", func(b *testing.B) {
			d, err := hashes.NewDigester(alg, algKey)
			if err != nil {
				b.Fatal(err)
			}
			fam, err := hashes.NewRecycling(d, k, m)
			if err != nil {
				b.Fatal(err)
			}
			var idx []uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx = fam.Indexes(idx[:0], item)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// §7: the full two-proxy Squid experiment (polluted run).

func BenchmarkSquidExperiment(b *testing.B) {
	cfg := cachedigest.DefaultExperimentConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := cachedigest.RunExperiment(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		if res.DigestBits != 762 {
			b.Fatalf("digest bits = %d", res.DigestBits)
		}
	}
}

// ---------------------------------------------------------------------------
// §6.2: constant-time forgery primitives.

func BenchmarkInstantSecondPreimage(b *testing.B) {
	fam, err := hashes.NewDoubleHashing(7, 95851, 3)
	if err != nil {
		b.Fatal(err)
	}
	forger, err := attack.NewInstantForger(fam, []byte("http://evil.com/"), 1)
	if err != nil {
		b.Fatal(err)
	}
	victim := fam.Clone().Indexes(nil, []byte("http://victim.example.com/"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forger.SecondPreimage(victim); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverflowAttackCrafting(b *testing.B) {
	fam, err := hashes.NewDoubleHashing(7, 95851, 3)
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.NewCounting(fam, 4, core.Wrap)
	if err != nil {
		b.Fatal(err)
	}
	forger, err := attack.NewInstantForger(fam, []byte("http://evil.com/"), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forger.EmptyViaOverflow(c, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4).

// Brute-force vs instant pollution of a dablooms-style stage: the value of
// MurmurHash3 inversion.
func BenchmarkAblationPollutionSearch(b *testing.B) {
	newStage := func() (*core.Counting, *hashes.DoubleHashing) {
		fam, err := hashes.NewDoubleHashing(7, 95851, 3)
		if err != nil {
			b.Fatal(err)
		}
		c, err := core.NewCounting(fam, 4, core.Wrap)
		if err != nil {
			b.Fatal(err)
		}
		gen := urlgen.New(1)
		for i := 0; i < 5000; i++ {
			c.Add(gen.Next())
		}
		return c, fam
	}
	b.Run("bruteforce", func(b *testing.B) {
		c, _ := newStage()
		forger := attack.NewForger(attack.NewCountingView(c), urlgen.New(2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := forger.ForgePolluting(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instant", func(b *testing.B) {
		c, fam := newStage()
		forger, err := attack.NewInstantForger(fam, []byte("http://evil.com/"), 3)
		if err != nil {
			b.Fatal(err)
		}
		view := attack.NewCountingView(c)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := forger.PollutingItem(view, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Overflow policy: wrap (dablooms-faithful, attackable) vs saturate (safe).
func BenchmarkAblationOverflowPolicy(b *testing.B) {
	for _, policy := range []core.OverflowPolicy{core.Wrap, core.Saturate} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			fam, err := hashes.NewDoubleHashing(7, 1<<20, 3)
			if err != nil {
				b.Fatal(err)
			}
			c, err := core.NewCounting(fam, 4, policy)
			if err != nil {
				b.Fatal(err)
			}
			item := []byte("http://hot.example.com/")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Add(item)
			}
		})
	}
}

// Index derivation strategies at equal geometry: the query-cost ablation
// behind Table 2's recommendation.
func BenchmarkAblationIndexFamilies(b *testing.B) {
	const m, k = 1 << 24, 7
	item := []byte("http://example.com/some/long/path/page.html")
	families := map[string]func() (hashes.IndexFamily, error){
		"salted-sha256": func() (hashes.IndexFamily, error) {
			d, err := hashes.NewDigester(hashes.SHA256, nil)
			if err != nil {
				return nil, err
			}
			return hashes.NewSalted(d, k, m)
		},
		"recycling-sha256": func() (hashes.IndexFamily, error) {
			d, err := hashes.NewDigester(hashes.SHA256, nil)
			if err != nil {
				return nil, err
			}
			return hashes.NewRecycling(d, k, m)
		},
		"doublehash-murmur": func() (hashes.IndexFamily, error) {
			return hashes.NewDoubleHashing(k, m, 3)
		},
		"xof-hmac-sha256": func() (hashes.IndexFamily, error) {
			return countermeasure.NewXOFFamily(hashes.HMACSHA256, []byte("key"), k, m)
		},
		"universal-cw": func() (hashes.IndexFamily, error) {
			key, err := hashes.NewUniversalKey(k)
			if err != nil {
				return nil, err
			}
			return hashes.NewUniversal(key, k, m)
		},
	}
	for name, build := range families {
		name, build := name, build
		b.Run(name, func(b *testing.B) {
			fam, err := build()
			if err != nil {
				b.Fatal(err)
			}
			var idx []uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx = fam.Indexes(idx[:0], item)
			}
		})
	}
}

// Worst-case vs optimal parameters under pollution: wall-clock of the
// campaign plus the achieved FPR as a reported metric.
func BenchmarkAblationWorstCaseDesign(b *testing.B) {
	const m, n = 3200, 600
	run := func(b *testing.B, k int) {
		var finalFPR float64
		for i := 0; i < b.N; i++ {
			fam, err := hashes.NewDoubleHashing(k, m, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			filter := core.NewBloom(fam)
			adv := attack.NewChosenInsertion(attack.NewBloomView(filter), filter, filter, urlgen.New(int64(i)))
			if _, err := adv.PolluteN(n, 0); err != nil {
				b.Fatal(err)
			}
			finalFPR = filter.EstimatedFPR()
		}
		b.ReportMetric(finalFPR, "polluted-FPR")
	}
	b.Run("optimal-k4", func(b *testing.B) { run(b, core.OptimalKInt(m, n)) })
	b.Run("worstcase-k2", func(b *testing.B) { run(b, core.WorstCaseKInt(m, n)) })
}

// ---------------------------------------------------------------------------
// Extensions (§10 of the paper: variants of Bloom filters and probabilistic
// counting under the adversary models).

// Adversarial HyperLogLog: honest adds vs constant-time forgery vs a full
// inflation pass.
func BenchmarkExtensionHLL(b *testing.B) {
	b.Run("honest-add", func(b *testing.B) {
		h, err := probcount.NewHLL(14, probcount.MurmurHash64{})
		if err != nil {
			b.Fatal(err)
		}
		gen := urlgen.New(1)
		items := make([][]byte, 256)
		for i := range items {
			items[i] = gen.Next()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Add(items[i&255])
		}
	})
	b.Run("forge-item", func(b *testing.B) {
		h, err := probcount.NewHLL(14, probcount.MurmurHash64{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := probcount.Forge(h, []byte("http://evil.com/"), i&(h.M()-1), 40, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inflation-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h, err := probcount.NewHLL(12, probcount.MurmurHash64{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := probcount.InflationAttack(h, []byte("http://evil.com/"), h.M()); err != nil {
				b.Fatal(err)
			}
			if h.Estimate() < 1e12 {
				b.Fatal("inflation failed")
			}
		}
	})
}

// Two-choice vs classic filter at identical (m, k, n): insert cost plus the
// resulting honest FPR as a metric — the "power of two choices" the paper's
// conclusion plays on.
func BenchmarkExtensionTwoChoice(b *testing.B) {
	const m, k, n = 1 << 16, 5, 9000
	b.Run("classic", func(b *testing.B) {
		var fpr float64
		for i := 0; i < b.N; i++ {
			fam, err := hashes.NewDoubleHashing(k, m, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			f := core.NewBloom(fam)
			gen := urlgen.New(int64(i))
			for j := 0; j < n; j++ {
				f.Add(gen.Next())
			}
			fpr = f.EstimatedFPR()
		}
		b.ReportMetric(fpr, "honest-FPR")
	})
	b.Run("two-choice", func(b *testing.B) {
		var fpr float64
		for i := 0; i < b.N; i++ {
			f, err := core.NewTwoChoiceMurmur(k, m, uint64(i), uint64(i)+1)
			if err != nil {
				b.Fatal(err)
			}
			gen := urlgen.New(int64(i))
			for j := 0; j < n; j++ {
				f.Add(gen.Next())
			}
			fpr = f.EstimatedFPR()
		}
		b.ReportMetric(fpr, "honest-FPR")
	})
}

// Nyberg accumulator vs Bloom-with-recycling: the query-cost gap (§9) that
// pushes developers towards Bloom filters — and into the paper's attacks.
func BenchmarkExtensionNybergVsBloom(b *testing.B) {
	const n = 1000
	f := 0.01
	item := []byte("http://example.com/some/page")
	b.Run("nyberg", func(b *testing.B) {
		acc, err := core.NewNybergForCapacity(n, f)
		if err != nil {
			b.Fatal(err)
		}
		acc.Add([]byte("member"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			acc.Test(item)
		}
	})
	b.Run("bloom-recycling-sha256", func(b *testing.B) {
		d, err := hashes.NewDigester(hashes.SHA256, nil)
		if err != nil {
			b.Fatal(err)
		}
		fam, err := hashes.NewRecycling(d, core.KForFPR(f), core.OptimalM(n, f))
		if err != nil {
			b.Fatal(err)
		}
		filter := core.NewBloom(fam)
		filter.Add([]byte("member"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			filter.Test(item)
		}
	})
}

// ---------------------------------------------------------------------------
// Service layer: the sharded store vs the seed's single global mutex, under
// a parallel 90% test / 10% add mix with periodic stats polling — the
// workload `evilbloom serve` actually faces. Sharded answers stats from
// incrementally-tracked weights in O(shards); the Synced baseline must
// popcount the whole bit vector under the one lock every request waits on.
// Keep the workload shape (geometry, 90/10 mix, scrape rate, item count) in
// step with BenchmarkParallelMixedMonitored in internal/service/bench_test.go,
// which owns the full comparison matrix; this root copy exists so the
// headline number regenerates alongside the paper's figures.
func BenchmarkServiceShardedVsSynced(b *testing.B) {
	const totalBits, k, statsEvery = 1 << 24, 5, 512
	gen := urlgen.New(42)
	items := make([][]byte, 1<<16)
	for i := range items {
		items[i] = gen.Next()
	}
	run := func(b *testing.B, add func([]byte), test func([]byte) bool, stats func()) {
		for _, it := range items[:len(items)/2] {
			add(it)
		}
		var ctr atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(ctr.Add(1)) * 7919
			var sink bool
			for pb.Next() {
				it := items[i&(len(items)-1)]
				switch {
				case i%statsEvery == 0:
					stats()
				case i%10 == 0:
					add(it)
				default:
					sink = sink != test(it)
				}
				i++
			}
			_ = sink
		})
	}
	b.Run("synced-global-mutex", func(b *testing.B) {
		fam, err := hashes.NewDoubleHashing(k, totalBits, 3)
		if err != nil {
			b.Fatal(err)
		}
		var mu sync.Mutex
		filter := core.NewBloom(fam)
		run(b,
			func(it []byte) { mu.Lock(); filter.Add(it); mu.Unlock() },
			func(it []byte) bool { mu.Lock(); ok := filter.Test(it); mu.Unlock(); return ok },
			func() { mu.Lock(); _ = filter.Weight(); mu.Unlock() })
	})
	newSharded := func(b *testing.B, variant service.Variant) *service.Sharded {
		s, err := service.NewSharded(service.Config{
			Variant:   variant,
			Shards:    16,
			ShardBits: totalBits / 16,
			HashCount: k,
			Mode:      service.ModeNaive,
			Seed:      3,
			RouteKey:  []byte("fedcba9876543210"),
		})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("sharded-16", func(b *testing.B) {
		s := newSharded(b, service.VariantBloom)
		run(b, s.Add, s.Test, func() { s.Stats() })
	})
	// The RLock baseline for the lock-free read path: identical store and
	// load, Test forced back under the striped read lock.
	b.Run("sharded-16-rlock-reads", func(b *testing.B) {
		s := newSharded(b, service.VariantBloom)
		s.SetLockFreeReads(false)
		run(b, s.Add, s.Test, func() { s.Stats() })
	})
	// The blocked variant: all k probes of an item inside one 512-bit block,
	// one cache miss per operation instead of up to k.
	b.Run("blocked-16", func(b *testing.B) {
		s := newSharded(b, service.VariantBlocked)
		run(b, s.Add, s.Test, func() { s.Stats() })
	})
}

// A guard against accidentally quadratic experiment drivers: the full Fig 3
// regeneration must stay well under a second.
func TestFig3RegenerationIsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	start := time.Now()
	if _, err := analysis.RunFig3(analysis.DefaultFig3Config()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("Fig 3 regeneration took %v", d)
	}
}
