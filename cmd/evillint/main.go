// Command evillint is the repo's invariant checker: a multichecker that
// runs the internal/lint analyzer suite over the module and fails the
// build on any unsuppressed finding. It replaces the token-grep that
// scripts/layering.sh used to be — the analyzers resolve types, so
// import aliases, method values, and renames cannot dodge them.
//
// Usage:
//
//	go run ./cmd/evillint [-list] [-v] [packages...]
//
// With no package patterns it checks ./... . Exit status is 1 when any
// finding is not suppressed by a //lint:allow annotation, 2 on analysis
// malfunction (load or type-check failure).
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"

	"evilbloom/internal/lint"
	"evilbloom/internal/lint/analysis"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings with their //lint:allow reasons")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: evillint [-list] [-v] [packages...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Checks the module's invariant suite; see -list for the analyzers.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.LoadModule(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	findings, err := lint.Run(prog, analyzers)
	if err != nil {
		fatal(err)
	}

	failed := 0
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if *verbose {
				fmt.Printf("%s: %s: suppressed (%s): %s\n", relPos(root, f.Pos), f.Analyzer, f.Reason, f.Message)
			}
			continue
		}
		failed++
		fmt.Printf("%s: %s: %s\n", relPos(root, f.Pos), f.Analyzer, f.Message)
	}
	if *verbose {
		fmt.Printf("evillint: %d finding(s), %d suppressed, %d package(s) checked\n",
			failed, suppressed, countTargets(prog))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func countTargets(prog *analysis.Program) int {
	n := 0
	for _, pkg := range prog.Packages {
		if pkg.Target {
			n++
		}
	}
	return n
}

// relPos renders a finding position relative to the module root, the way
// go vet prints them.
func relPos(root string, pos token.Position) string {
	file := pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && len(rel) < len(file) {
		file = rel
	}
	return fmt.Sprintf("%s:%d:%d", file, pos.Line, pos.Column)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "evillint: %v\n", err)
	os.Exit(2)
}
