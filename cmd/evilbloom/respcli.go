package main

import (
	"flag"
	"fmt"
	"time"

	"evilbloom/internal/resp"
)

// resp-cli: a one-shot RESP client for scripts and smoke tests — the
// redis-cli stand-in for environments without one. It speaks the same wire
// protocol redis-cli does, prints replies in the same shape, and exits 0
// even on an error reply (the reply text, "(error) ...", is the result;
// transport failures still exit nonzero).
func cmdRespCLI(args []string) error {
	fs := flag.NewFlagSet("resp-cli", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:6390", "RESP server address (host:port)")
	timeout := fs.Duration("timeout", 5*time.Second, "dial and reply timeout")
	repeat := fs.Int("repeat", 1, "send the command this many times, pipelined in one flush")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: evilbloom resp-cli [-addr host:port] COMMAND [arg...]")
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat must be at least 1")
	}
	cli, err := resp.DialTimeout(*addr, *timeout)
	if err != nil {
		return err
	}
	defer cli.Close()
	for i := 0; i < *repeat; i++ {
		cli.Send(fs.Args()...)
	}
	if err := cli.Flush(); err != nil {
		return err
	}
	for i := 0; i < *repeat; i++ {
		reply, err := cli.Receive()
		if err != nil {
			return err
		}
		fmt.Println(reply.Format())
	}
	return nil
}
