// Command evilbloom regenerates every experiment of "The Power of Evil
// Choices in Bloom Filters" (Gerbet, Kumar, Lauradoux — DSN 2015):
//
//	evilbloom fig3      pollution curves (m=3200, k=4): f, f_adv, partial
//	evilbloom fig5      cost of forging polluting URLs (pyBloom, 4 exponents)
//	evilbloom fig6      cost of forging one ghost URL vs filter occupation
//	evilbloom fig8      Dablooms compound F vs #polluted stages
//	evilbloom fig9      digest bits needed k·⌈log₂m⌉ and single-call domains
//	evilbloom table1    attack success probabilities
//	evilbloom table2    query cost: naive vs digest recycling
//	evilbloom squid     two-proxy cache-digest pollution experiment
//	evilbloom params    average-case vs worst-case parameter designs (§8.1)
//	evilbloom overflow  §6.2 counter-overflow attack demonstration
//	evilbloom serve     multi-filter service over HTTP: named bloom/counting/
//	                    blocked filters (§8 and §4.3 made live)
//	evilbloom bench-serve   HTTP load benchmark against a live registry
//	evilbloom bench-import  fold `go test -bench` output into the bench report
//	evilbloom bench-verify  validate a BENCH_*.json report
//
// Every experiment subcommand prints the paper's reference values next to
// the measured ones. All runs are deterministic for a fixed -seed.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"evilbloom/internal/analysis"
	"evilbloom/internal/attack"
	"evilbloom/internal/cachedigest"
	"evilbloom/internal/core"
	"evilbloom/internal/countermeasure"
	"evilbloom/internal/hashes"
	"evilbloom/internal/probcount"
	"evilbloom/internal/urlgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evilbloom:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "fig3":
		return cmdFig3(rest)
	case "fig5":
		return cmdFig5(rest)
	case "fig6":
		return cmdFig6(rest)
	case "fig8":
		return cmdFig8(rest)
	case "fig9":
		return cmdFig9(rest)
	case "table1":
		return cmdTable1(rest)
	case "table2":
		return cmdTable2(rest)
	case "squid":
		return cmdSquid(rest)
	case "params":
		return cmdParams(rest)
	case "overflow":
		return cmdOverflow(rest)
	case "hll":
		return cmdHLL(rest)
	case "serve":
		return cmdServe(rest)
	case "resp-cli":
		return cmdRespCLI(rest)
	case "bench-serve":
		return cmdBenchServe(rest)
	case "bench-import":
		return cmdBenchImport(rest)
	case "bench-verify":
		return cmdBenchVerify(rest)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: evilbloom <subcommand> [flags]

subcommands:
  fig3      pollution curves (paper Fig 3)
  fig5      polluting-URL forging cost (paper Fig 5)
  fig6      ghost-URL forging cost vs occupation (paper Fig 6)
  fig8      Dablooms pollution (paper Fig 8)
  fig9      digest bits and single-call domains (paper Fig 9)
  table1    attack success probabilities (paper Table 1)
  table2    naive vs recycling query cost (paper Table 2)
  squid     sibling-proxy cache-digest pollution (paper §7)
  params    worst-case vs average-case design (paper §8.1)
  overflow  counter-overflow attack (paper §6.2)
  hll       adversarial probabilistic counting (paper §10 extension)
  serve     multi-filter HTTP service: named bloom/counting/blocked filters,
            naive or hardened, with remove endpoints (§8 and §4.3 live);
            -resp-addr adds the redis-protocol binary plane
  resp-cli  one-shot RESP client (redis-cli stand-in for scripts):
            evilbloom resp-cli -addr 127.0.0.1:6390 BF.ADD default item
  bench-serve   HTTP load benchmark against a live registry (in-process by
                default): pipelined mixed add/test/remove, p50/p99 latency
                and ops/s, merged into BENCH_<date>.json
  bench-import  convert `+"`go test -bench`"+` output into the same report
  bench-verify  validate a BENCH_*.json report against the schema
`)
}

func cmdFig3(args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	chart := fs.Bool("chart", true, "render an ASCII chart")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := analysis.DefaultFig3Config()
	cfg.Seed = *seed
	res, err := analysis.RunFig3(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Fig 3 — false-positive probability vs insertions (m=%d, k=%d)\n\n", cfg.M, cfg.K)
	rows := [][]string{
		{"designer threshold f_opt", fmt.Sprintf("%.4f", res.ThresholdFPR), "0.077"},
		{"random insertions to threshold", fmt.Sprintf("%d", res.CrossingRandom), "600"},
		{"chosen insertions to threshold", fmt.Sprintf("%d", res.CrossingAdversarial), "422"},
		{"partial (400 honest) to threshold", fmt.Sprintf("%d", res.CrossingPartial), "510"},
		{"f_adv after 600 chosen insertions", fmt.Sprintf("%.4f", res.Adversarial[len(res.Adversarial)-1]), "0.316"},
		{"adversary candidate URLs tried", fmt.Sprintf("%d", res.ForgeAttempts), "-"},
	}
	fmt.Print(analysis.FormatTable([]string{"Metric", "Measured", "Paper"}, rows))
	if *chart {
		sr := &analysis.Series{Label: "random f"}
		sa := &analysis.Series{Label: "f_adv"}
		sp := &analysis.Series{Label: "partial"}
		for i := range res.Random {
			sr.Add(float64(i+1), res.Random[i])
			sa.Add(float64(i+1), res.Adversarial[i])
			sp.Add(float64(i+1), res.Partial[i])
		}
		fmt.Println()
		fmt.Print(analysis.RenderChart("FPR vs inserted items", []*analysis.Series{sa, sp, sr}, 64, 16))
	}
	return nil
}

func cmdFig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	budget := fs.Duration("budget", 3*time.Second, "time budget per curve")
	capacity := fs.Uint64("capacity", 1000000, "pyBloom capacity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := analysis.DefaultFig5Config()
	cfg.Seed = *seed
	cfg.TimeBudget = *budget
	cfg.Capacity = *capacity
	fmt.Printf("Fig 5 — cost of forging polluting URLs (pyBloom capacity %d)\n", cfg.Capacity)
	fmt.Printf("paper: 38 s for 10^6 URLs at f=2^-5; ~2 h at f=2^-20 (exponential in k)\n\n")
	series, err := analysis.RunFig5(cfg)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(series))
	for _, s := range series {
		status := "completed"
		if !s.Completed {
			status = "budget cut"
		}
		last := len(s.Items) - 1
		secs, items, attempts := 0.0, uint64(0), uint64(0)
		if last >= 0 {
			secs, items, attempts = s.Seconds[last], s.Items[last], s.Attempts[last]
		}
		rows = append(rows, []string{
			fmt.Sprintf("2^-%d", s.FPRExponent),
			fmt.Sprintf("%d", s.K),
			fmt.Sprintf("%d", items),
			fmt.Sprintf("%.2f", secs),
			fmt.Sprintf("%d", attempts),
			fmt.Sprintf("%.1f", float64(attempts)/math.Max(float64(items), 1)),
			status,
		})
	}
	fmt.Print(analysis.FormatTable(
		[]string{"f", "k", "URLs forged", "seconds", "candidates", "cand/URL", "status"}, rows))
	chartSeries := make([]*analysis.Series, 0, len(series))
	for i := range series {
		s := &series[i]
		cs := &analysis.Series{Label: fmt.Sprintf("f=2^-%d", s.FPRExponent)}
		for j := range s.Items {
			cs.Add(float64(s.Items[j]), s.Seconds[j])
		}
		chartSeries = append(chartSeries, cs)
	}
	fmt.Println()
	fmt.Print(analysis.RenderChart("cumulative forging time (s) vs URLs forged", chartSeries, 64, 14))
	return nil
}

func cmdFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	capacity := fs.Uint64("capacity", 0, "filter capacity (0 = default)")
	repeats := fs.Int("repeats", 0, "forgeries per point (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := analysis.DefaultFig6Config()
	cfg.Seed = *seed
	if *capacity > 0 {
		cfg.Capacity = *capacity
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	fmt.Printf("Fig 6 — cost of forging one ghost (false-positive) URL vs occupation\n")
	fmt.Printf("paper: up to ~3 h at low occupation for f=2^-10; cost falls steeply as the filter fills\n\n")
	series, err := analysis.RunFig6(cfg)
	if err != nil {
		return err
	}
	for _, s := range series {
		fmt.Printf("f = 2^-%d (k=%d), %.0f ns/candidate\n", s.FPRExponent, s.K, s.NsPerAttempt)
		rows := make([][]string, 0, len(s.Points))
		for _, p := range s.Points {
			measured := "-"
			if p.MeasuredAttempts >= 0 {
				measured = fmt.Sprintf("%.0f (%.3fs)", p.MeasuredAttempts, p.MeasuredSeconds)
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d%%", p.OccupationPct),
				fmt.Sprintf("%.3g", p.AnalyticAttempts),
				fmt.Sprintf("%.3g s", p.EstimatedSeconds),
				measured,
			})
		}
		fmt.Print(analysis.FormatTable(
			[]string{"occupation", "E[candidates]", "est. time", "measured"}, rows))
		fmt.Println()
	}
	return nil
}

func cmdFig8(args []string) error {
	fs := flag.NewFlagSet("fig8", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	capacity := fs.Uint64("capacity", 10000, "items per stage (δ)")
	probes := fs.Int("probes", 200000, "empirical probes (0 = analytic only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := analysis.DefaultFig8Config()
	cfg.Seed = *seed
	cfg.StageCapacity = *capacity
	cfg.Probes = *probes
	fmt.Printf("Fig 8 — Dablooms compound F vs #polluted stages (λ=%d, δ=%d, f0=%.2f, r=%.1f)\n\n",
		cfg.Stages, cfg.StageCapacity, cfg.F0, cfg.R)
	res, err := analysis.RunFig8(cfg)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, cfg.Stages+1)
	for i, est := range res.EstimatedF {
		emp := "-"
		if len(res.EmpiricalF) > i {
			emp = fmt.Sprintf("%.4f", res.EmpiricalF[i])
		}
		rows = append(rows, []string{fmt.Sprintf("%d", i), fmt.Sprintf("%.4f", est), emp})
	}
	fmt.Print(analysis.FormatTable([]string{"# polluted stages", "F (estimated)", "F (empirical)"}, rows))
	fmt.Printf("\nanalytic no-attack F = %.4f (paper curve ≈0.06)\n", res.AnalyticNoAttack)
	fmt.Printf("analytic full-attack F = %.4f (paper curve ≈0.6–0.7)\n", res.AnalyticFull)
	return nil
}

func cmdFig9(args []string) error {
	fs := flag.NewFlagSet("fig9", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	exponents := []int{5, 10, 15, 20}
	sizes := []uint64{128, 256, 384, 512, 640, 768, 896, 1024}
	fmt.Println("Fig 9 — digest bits needed per item: k·⌈log₂m⌉")
	fmt.Println()
	fmt.Print(analysis.FormatFig9(analysis.RunFig9(sizes, exponents), exponents))
	fmt.Println("\nSingle-call domains (largest filter covered by one digest):")
	rows := [][]string{}
	for _, d := range analysis.RunFig9Domains(exponents) {
		limit := "needs multiple calls at ≥1 MB"
		switch {
		case d.MaxMBytes >= analysis.DomainCapMBytes:
			limit = "≥1 TB"
		case d.MaxMBytes > 0:
			limit = fmt.Sprintf("%d MB", d.MaxMBytes)
		}
		rows = append(rows, []string{d.Algorithm.String(), fmt.Sprintf("2^-%d", d.FPRExponent), limit})
	}
	fmt.Print(analysis.FormatTable([]string{"Hash", "f", "Single-call up to"}, rows))
	fmt.Println("\npaper: one SHA-512 call suffices for f ≥ 2^-15 and m < 1 GByte")
	return nil
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	m := fs.Uint64("m", 3200, "filter size in bits")
	k := fs.Int("k", 4, "hash functions")
	w := fs.Uint64("w", 800, "Hamming weight W")
	ell := fs.Int("ell", 32, "digest bits of the underlying hash")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("Table 1 — attack success probabilities (m=%d, k=%d, W=%d, ℓ=%d)\n\n", *m, *k, *w, *ell)
	fmt.Print(analysis.FormatTable1(analysis.RunTable1(*ell, *m, *k, *w)))
	fmt.Println("\nordering (§4): pollution ≻ forgery ≻ deletion-per-item; Bloom second")
	fmt.Println("pre-images (1/m^k) are far easier than hash second pre-images (1/2^ℓ)")
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ContinueOnError)
	iters := fs.Int("iters", 30000, "measurement iterations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := analysis.DefaultTable2Config()
	cfg.Iterations = *iters
	k := core.KForFPR(cfg.FPR)
	m := core.OptimalM(cfg.Capacity, cfg.FPR)
	fmt.Printf("Table 2 — query cost, naive (k=%d calls) vs digest recycling\n", k)
	fmt.Printf("filter: n=%d, f=2^-10, m=%d bits (%.2f MB), 32-byte items\n\n", cfg.Capacity, m, float64(m)/8/(1<<20))
	rows, err := analysis.RunTable2(cfg)
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatTable2(rows))
	fmt.Println("\npaper (OpenSSL, µs): Murmur 0.7/-; MD5 5.9/0.28; SHA-1 6/0.29; SHA-256 51/0.49;")
	fmt.Println("SHA-384 53.3/0.78; SHA-512 53.6/0.8; HMAC-SHA-1 11.8/1.2; SipHash 1.7/0.3")
	return nil
}

func cmdSquid(args []string) error {
	fs := flag.NewFlagSet("squid", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := cachedigest.DefaultExperimentConfig()
	cfg.Seed = *seed
	fmt.Printf("§7 — Squid cache-digest pollution (%d clean + %d extra URLs, %d probes, RTT %v)\n\n",
		cfg.CleanURLs, cfg.ExtraURLs, cfg.Probes, cfg.RTT)
	res, err := analysis.RunSquid(cfg)
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatSquid(res, cfg.Probes))
	fmt.Println("\npaper: 79% false-positive hits polluted vs 40% clean; every false hit")
	fmt.Println("wastes ≥1 RTT (10 ms) between the sibling proxies")
	return nil
}

func cmdParams(args []string) error {
	fs := flag.NewFlagSet("params", flag.ContinueOnError)
	m := fs.Uint64("m", 3200, "filter size in bits")
	n := fs.Uint64("n", 600, "anticipated insertions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := countermeasure.DesignWorstCase(*m, *n)
	if err != nil {
		return err
	}
	fmt.Printf("§8.1 — average-case vs worst-case design (m=%d, n=%d)\n\n", *m, *n)
	rows := [][]string{
		{"k", fmt.Sprintf("%d (eq 2: %.2f)", d.OptimalK, core.OptimalK(*m, *n)), fmt.Sprintf("%d (eq 9: %.2f)", d.K, core.WorstCaseK(*m, *n))},
		{"honest FPR", fmt.Sprintf("%.4f", d.OptimalFPR), fmt.Sprintf("%.4f", d.HonestFPR)},
		{"FPR under pollution", fmt.Sprintf("%.4f", d.OptimalAdversarialFPR), fmt.Sprintf("%.4f", d.AdversarialFPR)},
	}
	fmt.Print(analysis.FormatTable([]string{"Metric", "average-case design", "worst-case design"}, rows))
	fmt.Printf("\nk_opt/k_adv = e·ln2 = %.2f (paper: 1.88)\n", core.KRatio())
	fmt.Printf("f_adv/f_opt per unit m/n = 1.05 (paper §8.1)\n")
	fmt.Printf("size factor, same honest FPR: %.2f (paper states %.1f; see EXPERIMENTS.md)\n",
		core.SizeFactorSameHonestFPR(), core.PaperSizeFactor)
	return nil
}

func cmdOverflow(args []string) error {
	fs := flag.NewFlagSet("overflow", flag.ContinueOnError)
	capacity := fs.Uint64("capacity", 10000, "stage capacity δ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := core.DefaultDabloomsConfig()
	cfg.StageCapacity = *capacity
	cfg.MaxStages = 1
	d, err := core.NewDablooms(cfg)
	if err != nil {
		return err
	}
	stage := d.CountingStages()[0]
	fam, ok := stage.Family().(*hashes.DoubleHashing)
	if !ok {
		return fmt.Errorf("stage does not use double hashing")
	}
	forger, err := attack.NewInstantForger(fam, []byte("http://evil.com/"), 1)
	if err != nil {
		return err
	}
	items, err := forger.EmptyViaOverflow(stage, *capacity)
	if err != nil {
		return err
	}
	for _, it := range items {
		d.Add(it)
	}
	a := (*capacity * uint64(stage.K())) % (stage.CounterMax() + 1)
	fmt.Printf("§6.2 — counter-overflow attack against one dablooms stage\n\n")
	rows := [][]string{
		{"stage capacity δ", fmt.Sprintf("%d", *capacity)},
		{"insertions performed", fmt.Sprintf("%d", stage.Count())},
		{"counters (m)", fmt.Sprintf("%d", stage.M())},
		{"non-zero counters after attack", fmt.Sprintf("%d", stage.Weight())},
		{"paper residue a = nk mod 16", fmt.Sprintf("%d", a)},
		{"overflow events", fmt.Sprintf("%d", stage.Overflows())},
	}
	fmt.Print(analysis.FormatTable([]string{"Metric", "Value"}, rows))
	fmt.Println("\nthe stage reports itself full while storing nothing — \"a complete")
	fmt.Println("waste of memory\"; crafted via constant-time MurmurHash3-128 inversion")
	return nil
}

func cmdHLL(args []string) error {
	fs := flag.NewFlagSet("hll", flag.ContinueOnError)
	precision := fs.Uint("precision", 12, "HLL precision (registers = 2^p)")
	honest := fs.Int("honest", 100000, "honest distinct items")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := uint8(*precision)
	fmt.Printf("§10 extension — probabilistic counting under evil choices (HLL, 2^%d registers)\n\n", p)

	sketch, err := probcount.NewHLL(p, probcount.MurmurHash64{})
	if err != nil {
		return err
	}
	gen := urlgen.New(1)
	for i := 0; i < *honest; i++ {
		sketch.Add(gen.Next())
	}
	honestEst := sketch.Estimate()

	inflated, err := probcount.NewHLL(p, probcount.MurmurHash64{})
	if err != nil {
		return err
	}
	if _, err := probcount.InflationAttack(inflated, []byte("http://evil.com/"), inflated.M()); err != nil {
		return err
	}

	suppressed, err := probcount.NewHLL(p, probcount.MurmurHash64{})
	if err != nil {
		return err
	}
	if _, err := probcount.SuppressionAttack(suppressed, []byte("http://evil.com/"), *honest); err != nil {
		return err
	}

	keyed, err := probcount.NewHLL(p, probcount.SipHash64{Key: hashes.SipKey{K0: 0xdead, K1: 0xbeef}})
	if err != nil {
		return err
	}
	crafted, err := probcount.SuppressionAttack(sketchClone(p), []byte("http://evil.com/"), *honest)
	if err != nil {
		return err
	}
	for _, it := range crafted {
		keyed.Add(it)
	}

	rows := [][]string{
		{fmt.Sprintf("%d honest items", *honest), fmt.Sprintf("%.0f", honestEst), fmt.Sprintf("±%.1f%% expected", 100*sketch.RelativeError())},
		{fmt.Sprintf("%d crafted items (inflation)", inflated.M()), fmt.Sprintf("%.3g", inflated.Estimate()), "maximum rank in every register"},
		{fmt.Sprintf("%d crafted items (suppression)", *honest), fmt.Sprintf("%.0f", suppressed.Estimate()), "all collapse onto register 0"},
		{fmt.Sprintf("%d crafted items, keyed sketch", *honest), fmt.Sprintf("%.0f", keyed.Estimate()), "SipHash key defeats steering"},
	}
	fmt.Print(analysis.FormatTable([]string{"Stream", "Estimate", "Note"}, rows))
	fmt.Println("\nforging uses constant-time MurmurHash3 inversion; the keyed sketch (§8.2")
	fmt.Println("applied to counting) sees the same stream as ~random and counts it correctly")
	return nil
}

// sketchClone builds a throwaway unkeyed sketch for crafting attack streams.
func sketchClone(p uint8) *probcount.HLL {
	h, err := probcount.NewHLL(p, probcount.MurmurHash64{})
	if err != nil {
		panic(err) // precision was validated by the caller's sketch
	}
	return h
}
