package main

import (
	"fmt"
	"time"

	"evilbloom/internal/resp"
)

// respBenchWorker is one connection's RESP load loop. The pipelined unit is
// one request: a BF.MADD/BF.MEXISTS of `pipeline` items (or `pipeline`
// CF.DEL commands flushed together for the remove op). With inflight > 1 the
// worker keeps that many requests unacknowledged, so the server's
// read-batch → one-shard-pass → write-batch path is exercised and the
// per-round-trip latency stops bounding throughput. Latency samples then
// include queueing delay — they measure what a pipelining client observes,
// not the server's per-request service time.
func respBenchWorker(bw *benchWorker, addr string, mix opMix, pool [][]byte, pipeline, inflight int, deadline time.Time) error {
	cli, err := resp.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()

	type slot struct {
		start time.Time
		cmds  int
		items int
	}
	queue := make([]slot, 0, inflight)
	batch := make([][]byte, pipeline)
	delArgs := [][]byte{[]byte("CF.DEL"), []byte("bench"), nil}

	receive := func() error {
		s := queue[0]
		queue = queue[:copy(queue, queue[1:])]
		for i := 0; i < s.cmds; i++ {
			reply, err := cli.Receive()
			if err != nil {
				return err
			}
			if e := reply.Err(); e != nil {
				return fmt.Errorf("server error reply: %w", e)
			}
		}
		bw.samples = append(bw.samples, time.Since(s.start).Nanoseconds())
		bw.ops += uint64(s.items)
		return nil
	}

	for time.Now().Before(deadline) {
		if len(queue) >= inflight {
			if err := receive(); err != nil {
				return err
			}
		}
		op := mix.pick(bw.rng)
		for i := range batch {
			batch[i] = pool[bw.rng.Intn(len(pool))]
		}
		s := slot{start: time.Now(), items: pipeline}
		switch op {
		case "add":
			cli.SendItems("BF.MADD", "bench", batch)
			s.cmds = 1
		case "test":
			cli.SendItems("BF.MEXISTS", "bench", batch)
			s.cmds = 1
		case "remove":
			for _, it := range batch {
				delArgs[2] = it
				cli.SendArgs(delArgs)
			}
			s.cmds = pipeline
		}
		if err := cli.Flush(); err != nil {
			return err
		}
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		if err := receive(); err != nil {
			return err
		}
	}
	return nil
}
