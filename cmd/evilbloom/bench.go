package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"evilbloom/internal/benchfmt"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/resp"
	"evilbloom/internal/service"
	"evilbloom/internal/urlgen"
)

// bench-serve: an HTTP load generator for the registry — N connections,
// each shipping pipelined (batched) mixed add/test/remove requests, with
// per-request latency percentiles and aggregate throughput reported in the
// shared benchfmt schema. By default it spins up an in-process registry
// server on a loopback port so one command measures the full HTTP path;
// -url points it at an already-running server instead.

// benchServeFlags collects the bench-serve knobs.
type benchServeFlags struct {
	fs         *flag.FlagSet
	conns      *int
	pipeline   *int
	duration   *time.Duration
	mix        *string
	variant    *string
	shards     *int
	shardBits  *uint64
	hashCount  *int
	seed       *uint64
	items      *int
	url        *string
	proto      *string
	inflight   *int
	rlockReads *bool
	name       *string
	out        *string
}

// set reports whether the named flag was given explicitly.
func (v *benchServeFlags) set(name string) bool {
	found := false
	v.fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			found = true
		}
	})
	return found
}

func newBenchServeFlagSet() *benchServeFlags {
	fs := flag.NewFlagSet("bench-serve", flag.ContinueOnError)
	return &benchServeFlags{
		fs:         fs,
		conns:      fs.Int("conns", 8, "concurrent client connections"),
		pipeline:   fs.Int("pipeline", 16, "items per request (batch depth; the pipelined unit)"),
		duration:   fs.Duration("duration", 3*time.Second, "measurement duration"),
		mix:        fs.String("mix", "test=0.9,add=0.1,remove=0", "operation mix as op=weight pairs"),
		variant:    fs.String("variant", "bloom", "filter backend: bloom, counting or blocked"),
		shards:     fs.Int("shards", 8, "shard count (power of two)"),
		shardBits:  fs.Uint64("shard-bits", 1<<20, "bits per shard (blocked rounds up to a multiple of 512)"),
		hashCount:  fs.Int("hashes", 4, "hash functions per item (k)"),
		seed:       fs.Uint64("seed", 42, "deterministic seed for the filter and the workload"),
		items:      fs.Int("items", 50000, "distinct items in the workload pool"),
		url:        fs.String("url", "", "benchmark an already-running server at this URL instead of in-process (http://, https:// or resp://host:port)"),
		proto:      fs.String("proto", "http", "wire protocol: http (JSON plane) or resp (binary plane)"),
		inflight:   fs.Int("inflight", 1, "pipelined requests kept unacknowledged per connection (resp only; 1 = synchronous round trips)"),
		rlockReads: fs.Bool("rlock-reads", false, "disable the lock-free read path (RLock baseline; in-process only)"),
		name:       fs.String("name", "", "run name in the report (default serve/<variant>/mixed[+rlock])"),
		out:        fs.String("out", "", "report path to merge into (default BENCH_<today>.json)"),
	}
}

// opMix is a normalized operation mix with cumulative thresholds for
// sampling: a uniform draw in [0,1) lands in an op's slot.
type opMix struct {
	ops  []string
	cums []float64
}

func parseMix(s string) (opMix, error) {
	weights := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return opMix{}, fmt.Errorf("mix entry %q is not op=weight", part)
		}
		switch k {
		case "test", "add", "remove":
		default:
			return opMix{}, fmt.Errorf("unknown op %q in mix (want test, add or remove)", k)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return opMix{}, fmt.Errorf("bad weight %q for op %q", v, k)
		}
		if _, dup := weights[k]; dup {
			return opMix{}, fmt.Errorf("op %q repeated in mix", k)
		}
		weights[k] = w
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return opMix{}, fmt.Errorf("mix %q has no positive weight", s)
	}
	// Deterministic op order keeps the threshold layout stable across runs.
	names := make([]string, 0, len(weights))
	for k, w := range weights {
		if w > 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	m := opMix{}
	var cum float64
	for _, k := range names {
		cum += weights[k] / total
		m.ops = append(m.ops, k)
		m.cums = append(m.cums, cum)
	}
	m.cums[len(m.cums)-1] = 1 // guard against float drift
	return m, nil
}

func (m opMix) pick(r *rand.Rand) string {
	f := r.Float64()
	for i, c := range m.cums {
		if f < c {
			return m.ops[i]
		}
	}
	return m.ops[len(m.ops)-1]
}

func (m opMix) has(op string) bool {
	for _, o := range m.ops {
		if o == op {
			return true
		}
	}
	return false
}

// benchWorker is one connection's state: its own RNG stream (decorrelated
// by worker id) and its latency samples.
type benchWorker struct {
	rng     *rand.Rand
	samples []int64
	ops     uint64
	err     error
}

func cmdBenchServe(args []string) error {
	v := newBenchServeFlagSet()
	if err := v.fs.Parse(args); err != nil {
		return err
	}
	if v.fs.NArg() > 0 {
		return fmt.Errorf("bench-serve takes no positional arguments, got %q", v.fs.Args())
	}
	if *v.conns < 1 {
		return fmt.Errorf("-conns must be at least 1")
	}
	if *v.pipeline < 1 || *v.pipeline > service.MaxBatch {
		return fmt.Errorf("-pipeline must be in [1, %d]", service.MaxBatch)
	}
	if *v.items < 1 {
		return fmt.Errorf("-items must be at least 1")
	}
	if *v.duration <= 0 {
		return fmt.Errorf("-duration must be positive")
	}
	mix, err := parseMix(*v.mix)
	if err != nil {
		return fmt.Errorf("bad -mix: %w", err)
	}
	variant, err := service.ParseVariant(*v.variant)
	if err != nil {
		return err
	}
	if mix.has("remove") && variant != service.VariantCounting {
		return fmt.Errorf("mix includes remove but the %v variant cannot delete; use -variant counting or remove=0", variant)
	}

	// Resolve the wire protocol before anything talks to a server: a -url is
	// validated scheme-first (it used to be silently assumed to be HTTP), and
	// a scheme that contradicts an explicit -proto is an error, not a guess.
	proto := *v.proto
	if proto != "http" && proto != "resp" {
		return fmt.Errorf("-proto %q not supported (want http or resp)", proto)
	}
	base := strings.TrimRight(*v.url, "/")
	respAddr := ""
	if base != "" {
		scheme, rest, ok := strings.Cut(base, "://")
		if !ok || rest == "" {
			return fmt.Errorf("-url %q has no scheme; use http://host:port, https://host:port or resp://host:port", base)
		}
		urlProto := ""
		switch scheme {
		case "http", "https":
			urlProto = "http"
		case "resp":
			urlProto = "resp"
			respAddr = rest
		default:
			return fmt.Errorf("-url scheme %q not supported (want http, https or resp)", scheme)
		}
		if v.set("proto") && proto != urlProto {
			return fmt.Errorf("-proto %s contradicts the -url scheme %s://", proto, scheme)
		}
		proto = urlProto
	}
	if *v.inflight < 1 {
		return fmt.Errorf("-inflight must be at least 1")
	}
	if proto != "resp" && *v.inflight > 1 {
		return fmt.Errorf("-inflight needs -proto resp; the HTTP client completes each request before sending the next")
	}

	cfg := service.Config{
		Variant:   variant,
		Shards:    *v.shards,
		ShardBits: *v.shardBits,
		HashCount: *v.hashCount,
		Seed:      *v.seed,
		RouteKey:  []byte("fedcba9876543210"),
	}
	filterURL := ""
	switch {
	case base == "":
		// In-process server on a loopback port: the benchmark still crosses
		// the real serving stack (framing, routing, rate accounting), just
		// without a network in the middle.
		reg := service.NewRegistry()
		f, err := reg.Create("bench", cfg)
		if err != nil {
			return err
		}
		if *v.rlockReads {
			f.Store().SetLockFreeReads(false)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		if proto == "resp" {
			rsrv := resp.NewServer(reg)
			go rsrv.Serve(ln)
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				rsrv.Shutdown(ctx)
			}()
			respAddr = ln.Addr().String()
			base = "resp://" + respAddr
			break
		}
		srv := &http.Server{Handler: httpapi.NewRegistryServer(reg)}
		go srv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		base = "http://" + ln.Addr().String()
		filterURL = base + "/v2/filters/bench"
	case *v.rlockReads:
		return fmt.Errorf("-rlock-reads needs the in-process server (it flips an internal knob); drop -url")
	case proto == "resp":
		// Against an external RESP server, create the filter over the wire;
		// an existing filter of the same name is reused as-is.
		cli, err := resp.Dial(respAddr)
		if err != nil {
			return fmt.Errorf("dialing %s: %w", respAddr, err)
		}
		reply, err := cli.Do("BF.RESERVE", "bench", "0", "0",
			"VARIANT", variant.String(),
			"SHARDS", strconv.Itoa(*v.shards),
			"SHARDBITS", strconv.FormatUint(*v.shardBits, 10),
			"HASHES", strconv.Itoa(*v.hashCount),
			"SEED", strconv.FormatUint(*v.seed, 10))
		cli.Close()
		if err != nil {
			return fmt.Errorf("creating filter over RESP at %s: %w", respAddr, err)
		}
		if e := reply.Err(); e != nil && !strings.Contains(e.Error(), "exists") {
			return fmt.Errorf("creating filter over RESP at %s: %w", respAddr, e)
		}
	default:
		// Against an external HTTP server, create the filter over the wire;
		// an existing filter of the same name is reused as-is.
		filterURL = base + "/v2/filters/bench"
		spec, _ := json.Marshal(map[string]any{
			"variant": variant.String(), "shards": *v.shards,
			"shard_bits": *v.shardBits, "hash_count": *v.hashCount, "seed": *v.seed,
		})
		req, err := http.NewRequest(http.MethodPut, filterURL, bytes.NewReader(spec))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			return fmt.Errorf("creating filter at %s: %w", filterURL, err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusCreated && res.StatusCode != http.StatusConflict {
			return fmt.Errorf("creating filter at %s: unexpected status %s", filterURL, res.Status)
		}
	}

	pool := urlgen.New(int64(*v.seed)).URLs(*v.items)

	transport := &http.Transport{
		MaxIdleConns:        *v.conns * 2,
		MaxIdleConnsPerHost: *v.conns * 2,
	}
	defer transport.CloseIdleConnections()

	fmt.Printf("bench-serve: %d conns × pipeline %d (inflight %d), proto %s, mix %s, variant %v, %v at %s\n",
		*v.conns, *v.pipeline, *v.inflight, proto, *v.mix, variant, *v.duration, base)

	var poolBytes [][]byte
	if proto == "resp" {
		poolBytes = make([][]byte, len(pool))
		for i, s := range pool {
			poolBytes[i] = []byte(s)
		}
	}

	workers := make([]benchWorker, *v.conns)
	deadline := time.Now().Add(*v.duration)
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(bw *benchWorker, id int) {
			defer wg.Done()
			// 7919 (a prime) decorrelates the per-worker streams from the
			// pool generator and from each other.
			bw.rng = rand.New(rand.NewSource(int64(*v.seed) + int64(id)*7919))
			if proto == "resp" {
				bw.err = respBenchWorker(bw, respAddr, mix, poolBytes, *v.pipeline, *v.inflight, deadline)
				return
			}
			client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
			batch := make([]string, *v.pipeline)
			for time.Now().Before(deadline) {
				op := mix.pick(bw.rng)
				for i := range batch {
					batch[i] = pool[bw.rng.Intn(len(pool))]
				}
				body, err := json.Marshal(map[string][]string{"items": batch})
				if err != nil {
					bw.err = err
					return
				}
				start := time.Now()
				res, err := client.Post(filterURL+"/"+op+"-batch", "application/json", bytes.NewReader(body))
				if err != nil {
					bw.err = err
					return
				}
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
				if res.StatusCode != http.StatusOK {
					bw.err = fmt.Errorf("%s-batch: unexpected status %s", op, res.Status)
					return
				}
				bw.samples = append(bw.samples, time.Since(start).Nanoseconds())
				bw.ops += uint64(len(batch))
			}
		}(&workers[w], w)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)

	var samples []int64
	var ops uint64
	for i := range workers {
		if workers[i].err != nil {
			return fmt.Errorf("worker %d: %w", i, workers[i].err)
		}
		samples = append(samples, workers[i].samples...)
		ops += workers[i].ops
	}
	if ops == 0 {
		return fmt.Errorf("no operations completed within %v", *v.duration)
	}
	lat := benchfmt.Quantiles(samples)
	opsPerSec := float64(ops) / elapsed.Seconds()

	name := *v.name
	if name == "" {
		name = "serve/" + variant.String() + "/mixed"
		if proto == "resp" {
			name += "+resp"
		}
		if *v.rlockReads {
			name += "+rlock"
		}
	}
	run := benchfmt.Run{
		Name:   name,
		Source: "bench-serve",
		Config: map[string]string{
			"variant":    variant.String(),
			"proto":      proto,
			"inflight":   strconv.Itoa(*v.inflight),
			"conns":      strconv.Itoa(*v.conns),
			"pipeline":   strconv.Itoa(*v.pipeline),
			"duration":   v.duration.String(),
			"mix":        *v.mix,
			"shards":     strconv.Itoa(*v.shards),
			"shard_bits": strconv.FormatUint(*v.shardBits, 10),
			"hashes":     strconv.Itoa(*v.hashCount),
			"seed":       strconv.FormatUint(*v.seed, 10),
			"lock_free":  strconv.FormatBool(!*v.rlockReads),
		},
		Ops:       ops,
		OpsPerSec: opsPerSec,
		Latency:   &lat,
	}

	date := time.Now().Format("2006-01-02")
	out := *v.out
	if out == "" {
		out = "BENCH_" + date + ".json"
	}
	report, err := benchfmt.Load(out, date)
	if err != nil {
		return fmt.Errorf("loading %s: %w", out, err)
	}
	report.Add(run)
	if err := report.Save(out); err != nil {
		return fmt.Errorf("writing %s: %w", out, err)
	}

	fmt.Printf("%s: %d ops in %v = %.0f ops/s; latency p50 %v p90 %v p99 %v max %v (per %d-item request)\n",
		name, ops, elapsed.Round(time.Millisecond), opsPerSec,
		time.Duration(lat.P50), time.Duration(lat.P90), time.Duration(lat.P99), time.Duration(lat.Max),
		*v.pipeline)
	fmt.Printf("report: %s (%d runs)\n", out, len(report.Runs))
	return nil
}

// bench-import: convert `go test -bench` output (stdin, or a file argument)
// into the same report schema bench-serve writes, so micro-benchmark ns/op
// and service-level latency live in one committed file.
func cmdBenchImport(args []string) error {
	fs := flag.NewFlagSet("bench-import", flag.ContinueOnError)
	out := fs.String("out", "", "report path to merge into (default BENCH_<today>.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var rd io.Reader = os.Stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	default:
		return fmt.Errorf("bench-import takes at most one input file, got %q", fs.Args())
	}
	runs, err := benchfmt.ParseGoBench(rd)
	if err != nil {
		return err
	}
	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}
	report, err := benchfmt.Load(path, date)
	if err != nil {
		return fmt.Errorf("loading %s: %w", path, err)
	}
	for _, r := range runs {
		report.Add(r)
	}
	if err := report.Save(path); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("imported %d go-test runs into %s (%d runs total)\n", len(runs), path, len(report.Runs))
	return nil
}

// bench-verify: strict schema validation of a report file — CI's gate on
// every emitted BENCH_*.json.
func cmdBenchVerify(args []string) error {
	fs := flag.NewFlagSet("bench-verify", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: evilbloom bench-verify <report.json>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	report, err := benchfmt.Decode(f)
	if err != nil {
		return err
	}
	if err := report.Validate(); err != nil {
		return err
	}
	fmt.Printf("%s: valid %s report, %d runs, dated %s\n", fs.Arg(0), report.Schema, len(report.Runs), report.Date)
	for _, r := range report.Runs {
		if r.Latency != nil {
			fmt.Printf("  %-40s %12.0f ops/s  p50 %v  p99 %v\n", r.Name, r.OpsPerSec,
				time.Duration(r.Latency.P50), time.Duration(r.Latency.P99))
		} else {
			fmt.Printf("  %-40s %12.0f ops/s  %.1f ns/op\n", r.Name, r.OpsPerSec, r.NsPerOp)
		}
	}
	return nil
}
