package main

import (
	"os"
	"strings"
	"testing"
	"time"

	"evilbloom/internal/service"
)

// captureStdout redirects os.Stdout for the duration of fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	var buf strings.Builder
	chunk := make([]byte, 64*1024)
	for {
		n, err := r.Read(chunk)
		buf.Write(chunk[:n])
		if err != nil {
			break
		}
	}
	return buf.String(), runErr
}

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("empty args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestSubcommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"fig3", []string{"fig3", "-chart=false"}, []string{"422", "0.316"}},
		{"fig5", []string{"fig5", "-budget", "200ms", "-capacity", "20000"}, []string{"2^-5", "2^-20"}},
		{"fig6", []string{"fig6", "-capacity", "10000", "-repeats", "1"}, []string{"occupation", "100%"}},
		{"fig8", []string{"fig8", "-capacity", "1000", "-probes", "20000"}, []string{"polluted stages", "full-attack"}},
		{"fig9", []string{"fig9"}, []string{"660", "SHA-512"}},
		{"table1", []string{"table1"}, []string{"Pollution", "Deletion"}},
		{"table2", []string{"table2", "-iters", "2000"}, []string{"SHA-512", "Speedup"}},
		{"squid", []string{"squid"}, []string{"762", "false hits"}},
		{"params", []string{"params"}, []string{"1.88", "worst-case"}},
		{"overflow", []string{"overflow", "-capacity", "500"}, []string{"non-zero counters", "overflow"}},
		{"hll", []string{"hll", "-honest", "20000"}, []string{"inflation", "suppression", "keyed"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out, err := captureStdout(t, func() error { return run(tc.args) })
			if err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("output of %v missing %q:\n%s", tc.args, want, out)
				}
			}
		})
	}
}

func TestSubcommandFlagErrors(t *testing.T) {
	if err := run([]string{"fig3", "-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"serve", "-definitely-not-a-flag"}); err == nil {
		t.Error("serve: bad flag accepted")
	}
	if err := run([]string{"serve", "-mode", "evil"}); err == nil {
		t.Error("serve: unknown mode accepted")
	}
	if err := run([]string{"serve", "-key", "zz"}); err == nil {
		t.Error("serve: malformed key accepted")
	}
	if err := run([]string{"serve", "-shards", "3"}); err == nil {
		t.Error("serve: non-power-of-two shard count accepted")
	}
}

// Contradictory serve flag combinations must error up front instead of
// being silently ignored.
func TestServeFlagValidation(t *testing.T) {
	key := "00112233445566778899aabbccddeeff"
	bad := [][]string{
		{"serve", "-variant", "cuckoo"},              // unknown variant
		{"serve", "-mode", "hardened", "-seed", "7"}, // hardened has no public seed
		{"serve", "-mode", "naive", "-key", key},     // naive has no index secret
		{"serve", "-key", key},                       // mode defaults to naive
		{"serve", "-counter-width", "8"},             // counters need -variant counting
		{"serve", "-overflow", "saturate"},           // ditto
		{"serve", "-variant", "bloom", "-overflow", "wrap"},
		{"serve", "-variant", "counting", "-overflow", "explode"}, // unknown policy
		{"serve", "-variant", "counting", "-counter-width", "99"}, // width out of range
		{"serve", "-fsync", "always"},                             // fsync needs -data-dir
		{"serve", "-fsync", "never"},                              // ditto, any policy
		{"serve", "-data-dir", "x", "-fsync", "sometimes"},        // unknown policy
		{"serve", "-peer-refresh", "5s"},                          // refresh needs -peer
		{"serve", "-peer", "http://h:1", "-peer-refresh", "0s"},   // non-positive interval
		{"serve", "-peer", "not-a-url"},                           // peer must be absolute http(s)
		{"serve", "-peer", "ftp://h:1/x"},                         // ditto, scheme checked
		{"serve", "-rate-burst", "10"},                            // burst needs -rate-mutations
		{"serve", "-rate-mutations", "0"},                         // explicit zero: omit the flag instead
		{"serve", "-rate-mutations", "-5"},                        // negative budget
		{"serve", "-rate-mutations", "5", "-rate-burst", "0"},     // non-positive burst
		{"serve", "-rate-mutations", "5", "-rate-burst", "-1"},    // ditto
		{"serve", "-rate-clients-max", "0"},                       // table cap must hold someone
		{"serve", "-topology", "ring"},                            // topology needs -peer
		{"serve", "-self", "http://h:1"},                          // self names a roster entry
		{"serve", "-peer", "http://h:1", "-topology", "mesh"},     // unknown topology
		{"serve", "-peer", "http://h:1", "-topology", "ring"},     // ring needs -self
		{"serve", "-peer", "http://h:1", "-topology", "hub"},      // hub needs -self
		{"serve", "-route-quorum", "0"},                           // quorum must be ≥ 1
		{"serve", "-peer-token", "noseparator"},                   // want name:secret
		{"serve", "-peer-token", "nodeA:"},                        // empty secret
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
	// Coherent combinations must pass validation (checked without binding a
	// listener by exercising the config assembly through NewSharded).
	good := []struct {
		variant, mode string
		extra         []string
	}{
		{"counting", "naive", []string{"-counter-width", "8", "-overflow", "saturate", "-seed", "7"}},
		{"counting", "hardened", []string{"-key", key}},
		{"bloom", "hardened", []string{"-key", key, "-route-key", key}},
		{"bloom", "naive", []string{"-seed", "9"}},
		{"bloom", "naive", []string{"-data-dir", "d", "-fsync", "always"}},
		{"bloom", "naive", []string{"-rate-mutations", "100", "-rate-burst", "500"}},
		{"bloom", "naive", []string{"-rate-mutations", "0.5"}},
		{"bloom", "naive", []string{"-trust-proxy", "-rate-clients-max", "64"}}, // accounting-only tuning
		{"bloom", "naive", []string{"-peer", "http://h:1", "-peer", "http://h:2", "-topology", "ring", "-self", "http://h:1"}},
		{"bloom", "naive", []string{"-peer", "http://h:1", "-peer", "http://h:2", "-topology", "hub", "-self", "http://h:2"}},
		{"bloom", "naive", []string{"-route-quorum", "2"}}, // push-only quorum voter
	}
	for _, tc := range good {
		args := append([]string{"-variant", tc.variant, "-mode", tc.mode}, tc.extra...)
		if err := checkServeConfig(t, args); err != nil {
			t.Errorf("coherent combination %v rejected: %v", args, err)
		}
	}
}

// The serving http.Server must time-bound both directions of every
// connection. WriteTimeout in particular: the serve code's own slowloris
// comment promised it, but until this revision only the read side was
// bounded — a client accepting a large snapshot response one byte at a
// time held its goroutine (and the buffered response) forever.
func TestServeHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(nil)
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Errorf("read-side timeouts unset: header=%v read=%v idle=%v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout)
	}
	if srv.WriteTimeout <= 0 {
		t.Fatal("WriteTimeout unset: a slow reader can hold a response goroutine forever")
	}
	// It must be generous enough for the largest response the API can
	// produce — a MaxSnapshotBytes snapshot at a modest 8 MiB/s...
	if floor := time.Duration(service.MaxSnapshotBytes/(8<<20)) * time.Second; srv.WriteTimeout < floor {
		t.Errorf("WriteTimeout %v cannot deliver a %d-byte snapshot at 8 MiB/s (needs ≥ %v)",
			srv.WriteTimeout, service.MaxSnapshotBytes, floor)
	}
	// ...while still actually bounding the goroutine's lifetime.
	if ceiling := time.Hour; srv.WriteTimeout > ceiling {
		t.Errorf("WriteTimeout %v is no bound at all (want ≤ %v)", srv.WriteTimeout, ceiling)
	}
}

// checkServeConfig runs serve's flag parsing and validation without
// starting the server.
func checkServeConfig(t *testing.T, args []string) error {
	t.Helper()
	fs, values := newServeFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := values.config(fs)
	if err != nil {
		return err
	}
	_, err = service.NewSharded(cfg)
	return err
}
