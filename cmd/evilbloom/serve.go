package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"evilbloom/internal/core"
	"evilbloom/internal/engine"
	"evilbloom/internal/httpapi"
	"evilbloom/internal/resp"
	"evilbloom/internal/service"
)

// serveFlags holds the parsed serve flag values; config turns them into the
// default filter's configuration after validating the combination.
type serveFlags struct {
	addr         *string
	respAddr     *string
	variant      *string
	shards       *int
	capacity     *uint64
	fpr          *float64
	mode         *string
	seed         *uint64
	keyHex       *string
	routeKeyHex  *string
	counterWidth *int
	overflow     *string
	dataDir      *string
	fsync        *string
	peers        stringList
	peerTokens   stringList
	authTokens   stringList
	peerRefresh  *time.Duration
	topology     *string
	self         *string
	routeQuorum  *int
	rateMut      *float64
	rateBurst    *float64
	rateClients  *int
	trustProxy   *bool
}

// stringList collects a repeatable string flag (-peer may appear once per
// sibling).
type stringList []string

// String implements flag.Value.
func (l *stringList) String() string { return strings.Join(*l, ",") }

// Set implements flag.Value.
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// newServeFlagSet declares the serve flag set.
func newServeFlagSet() (*flag.FlagSet, *serveFlags) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	v := &serveFlags{
		addr:         fs.String("addr", "127.0.0.1:8379", "listen address"),
		respAddr:     fs.String("resp-addr", "", "additional RESP (redis protocol) listen address, e.g. 127.0.0.1:6390; empty disables the binary plane"),
		variant:      fs.String("variant", "bloom", "default filter backend: bloom, counting (removable) or blocked (cache-line-local)"),
		shards:       fs.Int("shards", 8, "shard count (power of two)"),
		capacity:     fs.Uint64("capacity", 1<<20, "total anticipated insertions"),
		fpr:          fs.Float64("fpr", 1.0/1024, "target false-positive probability"),
		mode:         fs.String("mode", "naive", "index derivation: naive (attackable Murmur) or hardened (keyed SipHash)"),
		seed:         fs.Uint64("seed", 3, "public Murmur seed (naive mode only)"),
		keyHex:       fs.String("key", "", "hex-encoded 16-byte index secret (hardened mode only; random when empty)"),
		routeKeyHex:  fs.String("route-key", "", "hex-encoded 16-byte shard-routing secret (random when empty)"),
		counterWidth: fs.Int("counter-width", 4, "counter bits per position (counting variant only)"),
		overflow:     fs.String("overflow", "wrap", "counter overflow policy: wrap or saturate (counting variant only)"),
		dataDir:      fs.String("data-dir", "", "directory for durable filter state (snapshots + operation logs); empty serves from memory only"),
		fsync:        fs.String("fsync", "interval", "operation-log durability: always, interval or never (needs -data-dir)"),
		peerRefresh:  fs.Duration("peer-refresh", service.DefaultPeerRefresh, "digest refresh interval for -peer siblings"),
		topology:     fs.String("topology", "", "mesh fetch topology over the -peer roster: pairs (default), ring or hub; ring and hub need -self"),
		self:         fs.String("self", "", "this node's own base URL within the -peer roster (required for -topology ring or hub)"),
		routeQuorum:  fs.Int("route-quorum", 0, "sibling digest claims a route verdict needs before answering \"peer\" (default 1, the first-claiming-peer rule)"),
		rateMut:      fs.Float64("rate-mutations", 0, "per-client mutation budget in items/second across add/remove/digest-push (batches charge per item; 0 serves unthrottled, accounting only)"),
		rateBurst:    fs.Float64("rate-burst", 0, "mutation burst each client may spend at once (needs -rate-mutations; default one second of budget, floor 1)"),
		rateClients:  fs.Int("rate-clients-max", service.DefaultRateClientsMax, "per-filter client accounting-table cap; least-recently-seen identities are evicted beyond it"),
		trustProxy:   fs.Bool("trust-proxy", false, "trust X-Evilbloom-Client, then the rightmost X-Forwarded-For entry, for client identity (only behind a proxy tier that sets or sanitizes them)"),
	}
	fs.Var(&v.peers, "peer", "sibling evilbloomd base URL for cache-digest exchange (repeatable)")
	fs.Var(&v.peerTokens, "peer-token", "name:secret mesh credential (repeatable; the FIRST entry is this node's own): digests travel HMAC-sealed, fetches authenticate, and unauthenticated digest pushes are refused")
	fs.Var(&v.authTokens, "auth-token", "name:secret client credential (repeatable); authenticated clients get a cross-plane rate-limit bucket keyed by name instead of by network address")
	return fs, v
}

// config validates the flag combination up front — contradictory flags are
// an error, not something to silently ignore — and assembles the Config.
func (v *serveFlags) config(fs *flag.FlagSet) (service.Config, error) {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	variant, err := service.ParseVariant(*v.variant)
	if err != nil {
		return service.Config{}, err
	}
	mode, err := service.ParseMode(*v.mode)
	if err != nil {
		return service.Config{}, err
	}

	// Mode-dependent flags: naive mode has no index secret, hardened mode
	// has no public seed. Accepting the contradictory flag would quietly
	// serve something other than what the operator asked for.
	if mode == service.ModeHardened && set["seed"] {
		return service.Config{}, fmt.Errorf("-seed is meaningless with -mode hardened: the keyed family has no public seed (use -key to pin the secret)")
	}
	if mode == service.ModeNaive && set["key"] {
		return service.Config{}, fmt.Errorf("-key is meaningless with -mode naive: the Murmur family is unkeyed (use -seed, or -mode hardened)")
	}

	// Variant-dependent flags: counters exist only on the counting backend.
	if variant != service.VariantCounting {
		var rejected []string
		for _, name := range []string{"counter-width", "overflow"} {
			if set[name] {
				rejected = append(rejected, "-"+name)
			}
		}
		if len(rejected) > 0 {
			return service.Config{}, fmt.Errorf("%s need(s) -variant counting; a %v filter has no counters", strings.Join(rejected, ", "), variant)
		}
	}

	// Durability-dependent flags: the fsync policy governs the operation
	// log, which exists only under -data-dir.
	if set["fsync"] && *v.dataDir == "" {
		return service.Config{}, fmt.Errorf("-fsync needs -data-dir; without a data directory there is no operation log to sync")
	}
	if _, err := service.ParseSyncPolicy(*v.fsync); err != nil {
		return service.Config{}, err
	}

	// Peer-exchange flags: the refresh interval paces digest fetch loops
	// that exist only when siblings are configured, and the topology shapes
	// the roster those loops poll. (-peer-token and -route-quorum stand
	// alone: a push-only node still verifies pushes and votes with a
	// quorum.)
	if set["peer-refresh"] && len(v.peers) == 0 {
		return service.Config{}, fmt.Errorf("-peer-refresh needs -peer; without siblings there is no digest exchange to pace")
	}
	if *v.peerRefresh <= 0 {
		return service.Config{}, fmt.Errorf("-peer-refresh must be positive, got %v", *v.peerRefresh)
	}
	if set["topology"] && len(v.peers) == 0 {
		return service.Config{}, fmt.Errorf("-topology needs -peer; without a roster there are no fetch edges to shape")
	}
	if set["self"] && len(v.peers) == 0 {
		return service.Config{}, fmt.Errorf("-self needs -peer; it names this node's entry in the roster")
	}
	topo, err := service.ParseTopology(*v.topology)
	if err != nil {
		return service.Config{}, err
	}
	if (topo == service.TopologyRing || topo == service.TopologyHub) && *v.self == "" {
		return service.Config{}, fmt.Errorf("-topology %s needs -self: roster order decides the fetch edges, so the node must know which entry is its own", topo)
	}
	if set["route-quorum"] && *v.routeQuorum < 1 {
		return service.Config{}, fmt.Errorf("-route-quorum must be at least 1, got %d", *v.routeQuorum)
	}

	// Rate-limit flags: the burst spends from a budget, so it needs one.
	// (-rate-clients-max and -trust-proxy stand alone: they also govern the
	// always-on accounting table.)
	if set["rate-mutations"] && *v.rateMut <= 0 {
		return service.Config{}, fmt.Errorf("-rate-mutations must be positive, got %v (omit the flag to serve unthrottled)", *v.rateMut)
	}
	if set["rate-burst"] && !set["rate-mutations"] {
		return service.Config{}, fmt.Errorf("-rate-burst needs -rate-mutations; a burst alone is no budget")
	}
	if set["rate-burst"] && *v.rateBurst <= 0 {
		return service.Config{}, fmt.Errorf("-rate-burst must be positive, got %v", *v.rateBurst)
	}
	if *v.rateClients < 1 {
		return service.Config{}, fmt.Errorf("-rate-clients-max must be at least 1, got %d", *v.rateClients)
	}

	cfg := service.Config{
		Variant:   variant,
		Shards:    *v.shards,
		Capacity:  *v.capacity,
		TargetFPR: *v.fpr,
		Mode:      mode,
		Seed:      *v.seed,
	}
	if variant == service.VariantCounting {
		cfg.CounterWidth = *v.counterWidth
		if cfg.Overflow, err = core.ParseOverflowPolicy(*v.overflow); err != nil {
			return service.Config{}, err
		}
	}
	if cfg.Key, err = parseKeyFlag(*v.keyHex); err != nil {
		return service.Config{}, fmt.Errorf("-key: %w", err)
	}
	if cfg.RouteKey, err = parseKeyFlag(*v.routeKeyHex); err != nil {
		return service.Config{}, fmt.Errorf("-route-key: %w", err)
	}
	return cfg, nil
}

// cmdServe runs the multi-filter service (evilbloomd): a registry of named
// filters behind the /v2 API, with the flag-configured filter installed as
// "default" (also served on the /v1 shim) — the paper's §8 naive-vs-hardened
// comparison and the §4.3 deletion scenario as live HTTP endpoints the
// attack machinery can be pointed at. With -data-dir every filter journals
// its mutations and the whole registry survives a restart bit-identically;
// SIGINT/SIGTERM trigger a graceful drain-and-flush shutdown.
func cmdServe(args []string) error {
	fs, values := newServeFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := values.config(fs)
	if err != nil {
		return err
	}
	reg := service.NewRegistry()
	rateCfg := service.RateLimitConfig{
		MutationsPerSec: *values.rateMut,
		Burst:           *values.rateBurst,
		MaxClients:      *values.rateClients,
		TrustProxy:      *values.trustProxy,
	}
	if err := reg.ConfigureRateLimit(rateCfg); err != nil {
		return err
	}
	if rateCfg.MutationsPerSec > 0 {
		fmt.Fprintf(os.Stderr, "evilbloom serve: per-client mutation budget %.3g/s (burst %.3g, table cap %d) on add/remove/digest-push; exhausted budgets answer 429\n",
			rateCfg.MutationsPerSec, rateCfg.EffectiveBurst(), rateCfg.MaxClients)
	}
	// One command engine fronts both wire planes: HTTP and RESP are codecs
	// over the same validation, identity, rate-limit, and dispatch pipeline,
	// so a command costs the same no matter which protocol carries it. Built
	// before the mesh joins so the credential roster is the peer subsystem's
	// authority from the very first refresh.
	eng := engine.New(reg)
	if len(values.peerTokens) > 0 {
		if err := eng.ConfigurePeerAuth(values.peerTokens); err != nil {
			return err
		}
		selfName, _, _ := strings.Cut(values.peerTokens[0], ":")
		fmt.Fprintf(os.Stderr, "evilbloom serve: mesh roster of %d credential(s); digests sealed as %q, unauthenticated pushes refused\n",
			len(values.peerTokens), selfName)
	}
	topo, err := service.ParseTopology(*values.topology)
	if err != nil {
		return err
	}
	if len(values.peers) > 0 {
		// Join the mesh before any filter exists so every filter — flag
		// default, recovered, or created over HTTP — exchanges digests.
		if err := reg.ConfigurePeers(service.PeerConfig{
			Peers:       values.peers,
			Topology:    topo,
			Self:        *values.self,
			RouteQuorum: *values.routeQuorum,
			Refresh:     *values.peerRefresh,
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "evilbloom serve: exchanging cache digests with %d roster member(s) every %v under %s topology (route quorum %d): %s\n",
			len(values.peers), *values.peerRefresh, topo, reg.Peers().Quorum(), strings.Join(values.peers, ", "))
	} else if *values.routeQuorum > 0 {
		// A push-only mesh member: no fetch loops, but pushed digests still
		// feed route verdicts, and those verdicts honor the quorum.
		if err := reg.Peers().SetRouteQuorum(*values.routeQuorum); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "evilbloom serve: route verdicts need %d sibling claim(s)\n", *values.routeQuorum)
	}
	if *values.dataDir != "" {
		policy, err := service.ParseSyncPolicy(*values.fsync)
		if err != nil {
			return err
		}
		n, err := reg.OpenDataDir(*values.dataDir, policy)
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", *values.dataDir, err)
		}
		fmt.Fprintf(os.Stderr, "evilbloom serve: recovered %d filter(s) from %s (fsync=%s)\n", n, *values.dataDir, policy)
	}
	// The flag-configured default filter: created unless a persisted one
	// was just recovered, in which case the durable state wins and the
	// geometry flags are ignored (delete the filter's directory to rebuild
	// it from flags).
	if f, err := reg.Get(service.DefaultFilterName); err == nil {
		fmt.Fprintf(os.Stderr, "evilbloom serve: default filter restored from data dir (%s %s, count %d); geometry flags ignored\n",
			f.Store().Variant(), f.Store().Mode(), f.Store().Count())
	} else {
		store, err := service.NewSharded(cfg)
		if err != nil {
			return err
		}
		if _, err := reg.Adopt(service.DefaultFilterName, store); err != nil {
			return err
		}
	}
	defaultFilter, err := reg.Get(service.DefaultFilterName)
	if err != nil {
		return err
	}
	store := defaultFilter.Store()
	ln, err := net.Listen("tcp", *values.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "evilbloom serve: %s %s-mode default filter, %d shards × %d positions, k=%d, listening on http://%s\n",
		store.Variant(), store.Mode(), store.Shards(), store.ShardBits(), store.K(), ln.Addr())
	if store.Variant() == service.VariantCounting {
		fmt.Fprintf(os.Stderr, "evilbloom serve: %d-bit %s counters; remove endpoints enabled\n",
			store.CounterWidth(), store.OverflowPolicy())
	}
	if store.Mode() == service.ModeNaive {
		fmt.Fprintf(os.Stderr, "evilbloom serve: naive index seed %d is PUBLIC (served on the info endpoints) — this mode is meant to be attacked\n", store.Seed())
	}
	fmt.Fprintf(os.Stderr, "evilbloom serve: manage named filters via PUT/GET/DELETE /v2/filters/{name}; /v1/* serves the default filter\n")

	if len(values.authTokens) > 0 {
		if err := eng.ConfigureAuth(values.authTokens); err != nil {
			ln.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "evilbloom serve: %d auth token(s) installed; authenticated clients (HTTP Bearer, RESP AUTH) spend per-name budgets shared across planes\n",
			len(values.authTokens))
	}
	srv := newHTTPServer(httpapi.NewEngineServer(eng))

	// The optional RESP plane shares the engine — and therefore the auth
	// table, rate-limit buckets, accounting identities and creation caps —
	// with the HTTP listener. Same filters, same budgets, different wire
	// format.
	var respSrv *resp.Server
	var respLn net.Listener
	if *values.respAddr != "" {
		respLn, err = net.Listen("tcp", *values.respAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("-resp-addr: %w", err)
		}
		respSrv = resp.NewEngineServer(eng)
		_, respPort, _ := net.SplitHostPort(respLn.Addr().String())
		fmt.Fprintf(os.Stderr, "evilbloom serve: RESP plane on %s — try: redis-cli -p %s BF.ADD default item\n",
			respLn.Addr(), respPort)
	}

	// Graceful shutdown: SIGINT/SIGTERM stop accepting, drain in-flight
	// requests (so batches complete and their journal records land), then
	// flush and close every filter's durable store. Killing the process
	// mid-write is what the torn-tail recovery is for; the signal path
	// should never need it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 2)
	go func() { serveErr <- srv.Serve(ln) }()
	if respSrv != nil {
		go func() {
			if err := respSrv.Serve(respLn); !errors.Is(err, resp.ErrServerClosed) {
				serveErr <- err
			}
		}()
	}
	select {
	case err := <-serveErr:
		reg.Close() //nolint:errcheck // the listener error is the headline
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "evilbloom serve: signal received; draining\n")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "evilbloom serve: drain: %v\n", err)
	}
	if respSrv != nil {
		if err := respSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "evilbloom serve: resp drain: %v\n", err)
		}
	}
	if err := reg.Close(); err != nil {
		return fmt.Errorf("flushing durable state: %w", err)
	}
	fmt.Fprintf(os.Stderr, "evilbloom serve: durable state flushed; bye\n")
	return nil
}

// newHTTPServer assembles the serving http.Server with its transport-level
// protections. The filter attacks are the point; transport-level stalls
// (slowloris clients holding goroutines open) are not — on either side of
// the connection: the read timeouts cut slow senders, and WriteTimeout cuts
// slow *readers*, which the old configuration forgot — a client that
// accepted a large snapshot or digest response one byte at a time held its
// goroutine (and the response buffer) forever.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      serveWriteTimeout(),
		IdleTimeout:       2 * time.Minute,
	}
}

// serveWriteTimeout sizes WriteTimeout for the largest response the API can
// produce — a MaxSnapshotBytes snapshot envelope — delivered at a floor
// bandwidth of 4 MiB/s, plus scheduling slack. Slower-but-honest mirrors
// should split their reads or re-fetch; anything below the floor is
// indistinguishable from a slowloris reader.
func serveWriteTimeout() time.Duration {
	const floorBytesPerSec = 4 << 20
	return time.Duration(service.MaxSnapshotBytes/floorBytesPerSec+30) * time.Second
}

// parseKeyFlag decodes an optional hex key flag; empty means "draw random".
func parseKeyFlag(s string) ([]byte, error) {
	if s == "" {
		return nil, nil
	}
	key, err := hex.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(key) != 16 {
		return nil, fmt.Errorf("want 16 bytes, got %d", len(key))
	}
	return key, nil
}
