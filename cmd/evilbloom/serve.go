package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"evilbloom/internal/service"
)

// cmdServe runs the sharded filter service (evilbloomd): the paper's §8
// naive-vs-hardened comparison as a live HTTP endpoint the attack machinery
// can be pointed at.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8379", "listen address")
	shards := fs.Int("shards", 8, "shard count (power of two)")
	capacity := fs.Uint64("capacity", 1<<20, "total anticipated insertions")
	fpr := fs.Float64("fpr", 1.0/1024, "target false-positive probability")
	mode := fs.String("mode", "naive", "index derivation: naive (attackable Murmur) or hardened (keyed SipHash)")
	seed := fs.Uint64("seed", 3, "public Murmur seed (naive mode)")
	keyHex := fs.String("key", "", "hex-encoded 16-byte index secret (hardened mode; random when empty)")
	routeKeyHex := fs.String("route-key", "", "hex-encoded 16-byte shard-routing secret (random when empty)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := service.ParseMode(*mode)
	if err != nil {
		return err
	}
	cfg := service.Config{
		Shards:    *shards,
		Capacity:  *capacity,
		TargetFPR: *fpr,
		Mode:      m,
		Seed:      *seed,
	}
	if cfg.Key, err = parseKeyFlag(*keyHex); err != nil {
		return fmt.Errorf("-key: %w", err)
	}
	if cfg.RouteKey, err = parseKeyFlag(*routeKeyHex); err != nil {
		return fmt.Errorf("-route-key: %w", err)
	}
	store, err := service.NewSharded(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "evilbloom serve: %s mode, %d shards × %d bits, k=%d, listening on http://%s\n",
		store.Mode(), store.Shards(), store.ShardBits(), store.K(), ln.Addr())
	if store.Mode() == service.ModeNaive {
		fmt.Fprintf(os.Stderr, "evilbloom serve: naive index seed %d is PUBLIC (served on /v1/info) — this mode is meant to be attacked\n", store.Seed())
	}
	srv := &http.Server{
		Handler: service.NewServer(store),
		// The filter attacks are the point; transport-level stalls
		// (slowloris clients holding goroutines open) are not.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.Serve(ln)
}

// parseKeyFlag decodes an optional hex key flag; empty means "draw random".
func parseKeyFlag(s string) ([]byte, error) {
	if s == "" {
		return nil, nil
	}
	key, err := hex.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(key) != 16 {
		return nil, fmt.Errorf("want 16 bytes, got %d", len(key))
	}
	return key, nil
}
