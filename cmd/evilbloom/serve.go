package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"evilbloom/internal/core"
	"evilbloom/internal/service"
)

// serveFlags holds the parsed serve flag values; config turns them into the
// default filter's configuration after validating the combination.
type serveFlags struct {
	addr         *string
	variant      *string
	shards       *int
	capacity     *uint64
	fpr          *float64
	mode         *string
	seed         *uint64
	keyHex       *string
	routeKeyHex  *string
	counterWidth *int
	overflow     *string
}

// newServeFlagSet declares the serve flag set.
func newServeFlagSet() (*flag.FlagSet, *serveFlags) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	v := &serveFlags{
		addr:         fs.String("addr", "127.0.0.1:8379", "listen address"),
		variant:      fs.String("variant", "bloom", "default filter backend: bloom or counting (removable)"),
		shards:       fs.Int("shards", 8, "shard count (power of two)"),
		capacity:     fs.Uint64("capacity", 1<<20, "total anticipated insertions"),
		fpr:          fs.Float64("fpr", 1.0/1024, "target false-positive probability"),
		mode:         fs.String("mode", "naive", "index derivation: naive (attackable Murmur) or hardened (keyed SipHash)"),
		seed:         fs.Uint64("seed", 3, "public Murmur seed (naive mode only)"),
		keyHex:       fs.String("key", "", "hex-encoded 16-byte index secret (hardened mode only; random when empty)"),
		routeKeyHex:  fs.String("route-key", "", "hex-encoded 16-byte shard-routing secret (random when empty)"),
		counterWidth: fs.Int("counter-width", 4, "counter bits per position (counting variant only)"),
		overflow:     fs.String("overflow", "wrap", "counter overflow policy: wrap or saturate (counting variant only)"),
	}
	return fs, v
}

// config validates the flag combination up front — contradictory flags are
// an error, not something to silently ignore — and assembles the Config.
func (v *serveFlags) config(fs *flag.FlagSet) (service.Config, error) {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	variant, err := service.ParseVariant(*v.variant)
	if err != nil {
		return service.Config{}, err
	}
	mode, err := service.ParseMode(*v.mode)
	if err != nil {
		return service.Config{}, err
	}

	// Mode-dependent flags: naive mode has no index secret, hardened mode
	// has no public seed. Accepting the contradictory flag would quietly
	// serve something other than what the operator asked for.
	if mode == service.ModeHardened && set["seed"] {
		return service.Config{}, fmt.Errorf("-seed is meaningless with -mode hardened: the keyed family has no public seed (use -key to pin the secret)")
	}
	if mode == service.ModeNaive && set["key"] {
		return service.Config{}, fmt.Errorf("-key is meaningless with -mode naive: the Murmur family is unkeyed (use -seed, or -mode hardened)")
	}

	// Variant-dependent flags: counters exist only on the counting backend.
	if variant == service.VariantBloom {
		var rejected []string
		for _, name := range []string{"counter-width", "overflow"} {
			if set[name] {
				rejected = append(rejected, "-"+name)
			}
		}
		if len(rejected) > 0 {
			return service.Config{}, fmt.Errorf("%s need(s) -variant counting; a bloom filter has no counters", strings.Join(rejected, ", "))
		}
	}

	cfg := service.Config{
		Variant:   variant,
		Shards:    *v.shards,
		Capacity:  *v.capacity,
		TargetFPR: *v.fpr,
		Mode:      mode,
		Seed:      *v.seed,
	}
	if variant == service.VariantCounting {
		cfg.CounterWidth = *v.counterWidth
		if cfg.Overflow, err = core.ParseOverflowPolicy(*v.overflow); err != nil {
			return service.Config{}, err
		}
	}
	if cfg.Key, err = parseKeyFlag(*v.keyHex); err != nil {
		return service.Config{}, fmt.Errorf("-key: %w", err)
	}
	if cfg.RouteKey, err = parseKeyFlag(*v.routeKeyHex); err != nil {
		return service.Config{}, fmt.Errorf("-route-key: %w", err)
	}
	return cfg, nil
}

// cmdServe runs the multi-filter service (evilbloomd): a registry of named
// filters behind the /v2 API, with the flag-configured filter installed as
// "default" (also served on the /v1 shim) — the paper's §8 naive-vs-hardened
// comparison and the §4.3 deletion scenario as live HTTP endpoints the
// attack machinery can be pointed at.
func cmdServe(args []string) error {
	fs, values := newServeFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := values.config(fs)
	if err != nil {
		return err
	}
	store, err := service.NewSharded(cfg)
	if err != nil {
		return err
	}
	reg := service.NewRegistry()
	if _, err := reg.Adopt(service.DefaultFilterName, store); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *values.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "evilbloom serve: %s %s-mode default filter, %d shards × %d positions, k=%d, listening on http://%s\n",
		store.Variant(), store.Mode(), store.Shards(), store.ShardBits(), store.K(), ln.Addr())
	if store.Variant() == service.VariantCounting {
		fmt.Fprintf(os.Stderr, "evilbloom serve: %d-bit %s counters; remove endpoints enabled\n",
			store.CounterWidth(), store.OverflowPolicy())
	}
	if store.Mode() == service.ModeNaive {
		fmt.Fprintf(os.Stderr, "evilbloom serve: naive index seed %d is PUBLIC (served on the info endpoints) — this mode is meant to be attacked\n", store.Seed())
	}
	fmt.Fprintf(os.Stderr, "evilbloom serve: manage named filters via PUT/GET/DELETE /v2/filters/{name}; /v1/* serves the default filter\n")
	srv := &http.Server{
		Handler: service.NewRegistryServer(reg),
		// The filter attacks are the point; transport-level stalls
		// (slowloris clients holding goroutines open) are not.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.Serve(ln)
}

// parseKeyFlag decodes an optional hex key flag; empty means "draw random".
func parseKeyFlag(s string) ([]byte, error) {
	if s == "" {
		return nil, nil
	}
	key, err := hex.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(key) != 16 {
		return nil, fmt.Errorf("want 16 bytes, got %d", len(key))
	}
	return key, nil
}
