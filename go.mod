module evilbloom

go 1.22
