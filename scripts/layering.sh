#!/usr/bin/env bash
# Layering lint: the wire codecs must not reach around the command engine.
#
# This used to be a grep over the codec sources for the tokens
# ".Limiter()", ".Allow(", ".Refund(" and ".Store()" — which an import
# alias, a rename, or a method value (f := lim.Allow; f(...)) would dodge
# without anyone noticing. The check now runs evillint, whose layering
# analyzer resolves selector *objects* through the type-checker, alongside
# the rest of the invariant suite (atomicpublish, chargerefund, errmap,
# nolockednetio). See internal/lint for the analyzers and the
# //lint:allow escape hatch; `go run ./cmd/evillint -list` describes each.
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/evillint ./...
echo "evillint: OK (all invariants hold)"
