#!/usr/bin/env bash
# Layering lint: the wire codecs must not reach around the command engine.
#
# internal/httpapi and internal/resp are codecs — they decode wire frames
# into engine commands and render engine results and typed errors back out.
# Validation, identity resolution, rate-limit charging/refunding, and store
# dispatch live in internal/engine only. This check greps the codec sources
# (tests excluded: they drive the wire surface and may inspect internals)
# for the tokens that would mean a codec grew its own enforcement path:
#
#   .Limiter()          limiter access (charging outside the engine)
#   .Allow( / .Refund(  bucket charge/refund calls
#   .Store()            raw store handle (every registry item-op —
#                       AddBatch/TestBatch/RemoveBatch/... — hangs off it)
#
# A hit means a second, divergent pipeline is growing back — exactly the
# almost-identical-enforcement-paths gap the engine refactor closed.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for dir in internal/httpapi internal/resp; do
  hits=$(grep -nE '\.Limiter\(\)|\.Allow\(|\.Refund\(|\.Store\(\)' \
    --include='*.go' --exclude='*_test.go' -r "$dir" || true)
  if [ -n "$hits" ]; then
    echo "layering violation: $dir must go through internal/engine, not the limiter/store directly:" >&2
    echo "$hits" >&2
    fail=1
  fi
done

# The engine is the only non-domain package allowed to touch the limiter.
# Everything else that imports service and calls Limiter() outside tests is
# a side door (cmd and examples configure limits via the registry, which is
# fine — they must not charge buckets).
charge_hits=$(grep -nE '\.Limiter\(\)\.(Allow|Refund)\(' \
  --include='*.go' --exclude='*_test.go' -r cmd examples internal \
  | grep -v '^internal/engine/' || true)
if [ -n "$charge_hits" ]; then
  echo "layering violation: only internal/engine may charge or refund rate-limit buckets:" >&2
  echo "$charge_hits" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "layering: OK (codecs are engine-only)"
