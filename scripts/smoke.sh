#!/usr/bin/env bash
# Smoke test for the live multi-filter service: build the real binary, start
# it with a durable data dir, create a counting filter over HTTP, drive adds
# and adversarial removals with curl, and verify the §4.3 signature — an
# honest item turned false negative by removing crafted "ghost" items the
# filter wrongly believes present. Then SIGTERM the server (graceful drain +
# flush), restart it from the same data dir, and verify the filter state —
# stats, the adversarially induced false negatives, the v1 default filter —
# survived the restart unchanged.
#
# Deterministic: the filter is tiny (m=64, k=4) with a fixed public seed, so
# every counter position, false positive and induced false negative is the
# same on every run.
set -euo pipefail

ADDR="127.0.0.1:${SMOKE_PORT:-18379}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/evilbloom"
LOG="$(dirname "$BIN")/serve.log"
DATA="$(dirname "$BIN")/data"

cleanup() {
  [[ -n "${SERVER_PID:-}" ]] && kill "$SERVER_PID" 2>/dev/null || true
  [[ -n "${SERVER_B_PID:-}" ]] && kill "$SERVER_B_PID" 2>/dev/null || true
  [[ -n "${SERVER_C_PID:-}" ]] && kill "$SERVER_C_PID" 2>/dev/null || true
  [[ -n "${SERVER_D_PID:-}" ]] && kill "$SERVER_D_PID" 2>/dev/null || true
  [[ -n "${SERVER_E_PID:-}" ]] && kill "$SERVER_E_PID" 2>/dev/null || true
  [[ -n "${SERVER_F_PID:-}" ]] && kill "$SERVER_F_PID" 2>/dev/null || true
  [[ -n "${SERVER_G_PID:-}" ]] && kill "$SERVER_G_PID" 2>/dev/null || true
}
trap cleanup EXIT

say()  { printf 'smoke: %s\n' "$*"; }
fail() { say "FAIL: $*"; [[ -f "$LOG" ]] && sed 's/^/smoke:   server: /' "$LOG"; exit 1; }

wait_ready() {
  for i in $(seq 1 50); do
    curl -sf "$BASE/v1/info" >/dev/null 2>&1 && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
  done
  curl -sf "$BASE/v1/info" >/dev/null || fail "server never came up"
}

say "building evilbloom"
go build -o "$BIN" ./cmd/evilbloom

say "starting evilbloom serve on $ADDR with -data-dir $DATA"
"$BIN" serve -addr "$ADDR" -data-dir "$DATA" >"$LOG" 2>&1 &
SERVER_PID=$!

wait_ready

say "creating a counting filter (m=64, k=4, naive seed 3) via PUT /v2/filters/smoke"
CREATE=$(curl -sf -X PUT "$BASE/v2/filters/smoke" \
  -d '{"variant":"counting","mode":"naive","shards":1,"shard_bits":64,"hash_count":4,"seed":3}')
echo "$CREATE" | grep -q '"variant":"counting"' || fail "unexpected create response: $CREATE"
echo "$CREATE" | grep -q '"remove"' || fail "counting filter does not advertise remove: $CREATE"

say "adding 100 honest items"
ITEMS=$(printf '"http://honest.example/%s",' $(seq 1 100))
curl -sf -X POST "$BASE/v2/filters/smoke/add-batch" -d "{\"items\":[${ITEMS%,}]}" \
  | grep -q '"added":100' || fail "batch add failed"

say "checking a never-inserted ghost item reads as present (false positive at high fill)"
GHOST_PRESENT=$(curl -sf -X POST "$BASE/v2/filters/smoke/test" -d '{"item":"ghost-0"}')
echo "$GHOST_PRESENT" | grep -q '"present":true' || fail "ghost not a false positive: $GHOST_PRESENT"

say "removing ghost items the filter wrongly believes present"
ACCEPTED=0
for i in $(seq 0 39); do
  RESP=$(curl -s -X POST "$BASE/v2/filters/smoke/remove" -d "{\"item\":\"ghost-$i\"}")
  echo "$RESP" | grep -q '"removed":1' && ACCEPTED=$((ACCEPTED + 1))
done
say "server accepted $ACCEPTED ghost removals"
[[ "$ACCEPTED" -gt 0 ]] || fail "no ghost removal accepted"

say "checking for induced false negatives among the honest items"
fn_list() {
  local out="$1"
  : >"$out"
  for i in $(seq 1 100); do
    RESP=$(curl -sf -X POST "$BASE/v2/filters/smoke/test" -d "{\"item\":\"http://honest.example/$i\"}")
    echo "$RESP" | grep -q '"present":false' && echo "$i" >>"$out"
  done
  return 0
}
FN_BEFORE="$(dirname "$BIN")/fn-before.txt"
fn_list "$FN_BEFORE"
FN=$(wc -l <"$FN_BEFORE")
say "$FN/100 honest items driven to false negatives"
[[ "$FN" -gt 0 ]] || fail "removals induced no false negative"

say "verifying stats and the v1 shim still answer"
curl -sf "$BASE/v2/filters/smoke/stats" | grep -q '"variant":"counting"' || fail "stats missing variant"
curl -sf -X POST "$BASE/v1/add" -d '{"item":"x"}' | grep -q '"added":1' || fail "v1 shim broken"

# ---------------------------------------------------------------------------
# Blocked-bloom variant over HTTP: create a cache-line-local filter, run a
# pollution campaign against it, and (after the restart below) verify its
# stats and snapshot survive byte-identically. Deterministic: one 512-bit
# block, fixed public seed.

say "creating a blocked filter (one 512-bit block, k=4, naive seed 3) via PUT /v2/filters/blk"
BLK_CREATE=$(curl -sf -X PUT "$BASE/v2/filters/blk" \
  -d '{"variant":"blocked","mode":"naive","shards":1,"shard_bits":512,"hash_count":4,"seed":3}')
echo "$BLK_CREATE" | grep -q '"variant":"blocked"' || fail "unexpected blocked create response: $BLK_CREATE"

say "a blocked filter must refuse removal with the capability error (405)"
BLK_RM=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v2/filters/blk/remove" -d '{"item":"x"}')
[[ "$BLK_RM" == "405" ]] || fail "blocked remove answered $BLK_RM, want 405"

say "running a pollution campaign against the blocked filter (120 chosen inserts)"
BLK_ITEMS=$(printf '"http://pollute.example/%s",' $(seq 1 120))
curl -sf -X POST "$BASE/v2/filters/blk/add-batch" -d "{\"items\":[${BLK_ITEMS%,}]}" \
  | grep -q '"added":120' || fail "blocked pollution batch failed"
BLK_FILL=$(curl -sf "$BASE/v2/filters/blk/stats" | grep -o '"fill":[0-9.]*' | head -n1)
say "blocked filter polluted: $BLK_FILL"

say "recording the blocked filter's ghost false positives, stats and snapshot"
blk_ghosts() {
  local out="$1"
  : >"$out"
  for i in $(seq 0 19); do
    RESP=$(curl -sf -X POST "$BASE/v2/filters/blk/test" -d "{\"item\":\"blk-ghost-$i\"}")
    echo "$RESP" | grep -q '"present":true' && echo "$i" >>"$out"
  done
  return 0
}
BLK_GHOSTS_BEFORE="$(dirname "$BIN")/blk-ghosts-before.txt"
blk_ghosts "$BLK_GHOSTS_BEFORE"
say "$(wc -l <"$BLK_GHOSTS_BEFORE")/20 ghosts read present on the polluted blocked filter"
blk_stats() { curl -sf "$BASE/v2/filters/blk/stats" | sed 's/"rate_limit":{[^}]*}//'; }
BLK_STATS_BEFORE=$(blk_stats)
echo "$BLK_STATS_BEFORE" | grep -q '"variant":"blocked"' || fail "blocked stats missing variant"
BLK_SNAP_BEFORE="$(dirname "$BIN")/blk-snap-before.evb"
curl -sf -o "$BLK_SNAP_BEFORE" "$BASE/v2/filters/blk/snapshot" && [[ -s "$BLK_SNAP_BEFORE" ]] \
  || fail "blocked snapshot export failed"

say "compacting the smoke filter (snapshot + log rotation)"
curl -sf -X POST "$BASE/v2/filters/smoke/compact" | grep -q '"compacted":true' || fail "compact failed"
say "adding one post-compact item so the restart replays snapshot + log"
curl -sf -X POST "$BASE/v2/filters/smoke/add" -d '{"item":"post-compact"}' | grep -q '"added":1' || fail "post-compact add failed"
# Filter state survives restarts byte-identically; the in-memory rate-limit
# accounting (the flat "rate_limit" object in stats) deliberately does not,
# so it is stripped from the comparison.
filter_stats() { curl -sf "$BASE/v2/filters/smoke/stats" | sed 's/"rate_limit":{[^}]*}//'; }
STATS_BEFORE=$(filter_stats)

say "SIGTERM: graceful drain and durable-state flush"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
grep -q "durable state flushed" "$LOG" || fail "graceful shutdown did not flush"

say "restarting from $DATA"
"$BIN" serve -addr "$ADDR" -data-dir "$DATA" >"$LOG" 2>&1 &
SERVER_PID=$!
wait_ready
grep -q "recovered 3 filter(s)" "$LOG" || fail "restart did not recover all three filters"

say "verifying stats survived the restart byte-identically"
STATS_AFTER=$(filter_stats)
[[ "$STATS_BEFORE" == "$STATS_AFTER" ]] || fail "stats changed across restart:
  before: $STATS_BEFORE
  after:  $STATS_AFTER"

say "verifying the adversarially induced false negatives survived"
FN_AFTER="$(dirname "$BIN")/fn-after.txt"
fn_list "$FN_AFTER"
diff -q "$FN_BEFORE" "$FN_AFTER" >/dev/null || fail "false-negative set changed across restart"
curl -sf -X POST "$BASE/v2/filters/smoke/test" -d '{"item":"post-compact"}' | grep -q '"present":true' \
  || fail "post-compact item lost"

say "verifying the v1 default filter survived too"
curl -sf -X POST "$BASE/v1/test" -d '{"item":"x"}' | grep -q '"present":true' || fail "default filter state lost"

say "verifying the polluted blocked filter survived the restart"
BLK_STATS_AFTER=$(blk_stats)
[[ "$BLK_STATS_BEFORE" == "$BLK_STATS_AFTER" ]] || fail "blocked stats changed across restart:
  before: $BLK_STATS_BEFORE
  after:  $BLK_STATS_AFTER"
BLK_SNAP_AFTER="$(dirname "$BIN")/blk-snap-after.evb"
curl -sf -o "$BLK_SNAP_AFTER" "$BASE/v2/filters/blk/snapshot" \
  || fail "blocked snapshot re-export failed"
cmp -s "$BLK_SNAP_BEFORE" "$BLK_SNAP_AFTER" || fail "blocked snapshot changed across restart"
BLK_GHOSTS_AFTER="$(dirname "$BIN")/blk-ghosts-after.txt"
blk_ghosts "$BLK_GHOSTS_AFTER"
diff -q "$BLK_GHOSTS_BEFORE" "$BLK_GHOSTS_AFTER" >/dev/null \
  || fail "blocked ghost false-positive set changed across restart"
for i in 1 60 120; do
  curl -sf -X POST "$BASE/v2/filters/blk/test" -d "{\"item\":\"http://pollute.example/$i\"}" \
    | grep -q '"present":true' || fail "blocked filter lost polluting item $i across restart"
done

# ---------------------------------------------------------------------------
# Two-server cache-digest exchange (§7 live): a second evilbloom process
# peers at the first, pulls its digests, and routes by them. Pollute A's
# filter and B's routing verdicts for never-cached items flip from "origin"
# to "peer" — the paper's misdirected sibling probes, over two real
# processes. Deterministic: tiny filter (m=64, k=4), fixed public seed.

say "=== two-server digest exchange (§7) ==="
B_ADDR="127.0.0.1:${SMOKE_PORT2:-18380}"
B_BASE="http://$B_ADDR"
LOG_B="$(dirname "$BIN")/serve-b.log"
MESH='{"shards":1,"shard_bits":64,"hash_count":4,"seed":3}'

say "creating the shared 'mesh' filter on server A"
curl -sf -X PUT "$BASE/v2/filters/mesh" -d "$MESH" | grep -q '"digest"' \
  || fail "mesh filter does not advertise the digest capability"

say "the counting filter exports a digest too (any variant, 1 bit/position)"
SMOKE_DIGEST="$(dirname "$BIN")/smoke-digest.bin"
curl -sf -o "$SMOKE_DIGEST" "$BASE/v2/filters/smoke/digest" && [[ -s "$SMOKE_DIGEST" ]] \
  || fail "counting-filter digest export failed"

say "starting peer server B on $B_ADDR with -peer $BASE"
"$BIN" serve -addr "$B_ADDR" -peer "$BASE" -peer-refresh 1s >"$LOG_B" 2>&1 &
SERVER_B_PID=$!
for i in $(seq 1 50); do
  curl -sf "$B_BASE/v1/info" >/dev/null 2>&1 && break
  kill -0 "$SERVER_B_PID" 2>/dev/null || { LOG="$LOG_B" fail "server B exited during startup"; }
  sleep 0.1
done
curl -sf "$B_BASE/v1/info" >/dev/null || fail "server B never came up"
curl -sf -X PUT "$B_BASE/v2/filters/mesh" -d "$MESH" >/dev/null || fail "creating mesh on B failed"

say "checking A's digest endpoint and its ETag short-circuit"
DIGEST_FILE="$(dirname "$BIN")/mesh-digest.bin"
ETAG=$(curl -sf -D - -o "$DIGEST_FILE" "$BASE/v2/filters/mesh/digest" \
  | awk 'tolower($1)=="etag:"{print $2}' | tr -d '\r')
[[ -s "$DIGEST_FILE" && -n "$ETAG" ]] || fail "digest export returned no body or no ETag"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $ETAG" "$BASE/v2/filters/mesh/digest")
[[ "$CODE" == "304" ]] || fail "unchanged digest refetched (status $CODE, want 304)"

say "B exchanges digests with A and reports the peer"
curl -sf -X POST "$B_BASE/v2/filters/mesh/peers/refresh" | grep -q '"has_digest":true' \
  || fail "B holds no digest of A after refresh"

say "routing verdicts before pollution: everything goes to the origin"
curl -sf -X POST "$B_BASE/v2/filters/mesh/route" -d '{"item":"wanted-item"}' \
  | grep -q '"verdict":"origin"' || fail "empty mesh routed somewhere"
GHOSTS_BEFORE=0
for i in $(seq 0 19); do
  curl -sf -X POST "$B_BASE/v2/filters/mesh/route" -d "{\"item\":\"mesh-ghost-$i\"}" \
    | grep -q '"verdict":"peer"' && GHOSTS_BEFORE=$((GHOSTS_BEFORE + 1))
done
say "$GHOSTS_BEFORE/20 ghost probes misdirected before pollution"
[[ "$GHOSTS_BEFORE" -le 3 ]] || fail "clean digest already misdirects $GHOSTS_BEFORE/20 ghosts"

say "caching wanted-item on A: B must now route it to the peer"
curl -sf -X POST "$BASE/v2/filters/mesh/add" -d '{"item":"wanted-item"}' >/dev/null
curl -sf -X POST "$B_BASE/v2/filters/mesh/peers/refresh" >/dev/null
curl -sf -X POST "$B_BASE/v2/filters/mesh/route" -d '{"item":"wanted-item"}' \
  | grep -q "\"verdict\":\"peer\",\"peer\":\"$BASE\"" || fail "cached item not routed to A"

say "polluting A's mesh filter (60 inserts saturate the 64-bit digest)"
POLLUTION=$(printf '"pollution-%s",' $(seq 1 60))
curl -sf -X POST "$BASE/v2/filters/mesh/add-batch" -d "{\"items\":[${POLLUTION%,}]}" >/dev/null \
  || fail "pollution batch failed"
curl -sf -X POST "$B_BASE/v2/filters/mesh/peers/refresh" >/dev/null

say "routing verdicts after pollution: ghosts are misdirected at A"
GHOSTS_AFTER=0
for i in $(seq 0 19); do
  curl -sf -X POST "$B_BASE/v2/filters/mesh/route" -d "{\"item\":\"mesh-ghost-$i\"}" \
    | grep -q '"verdict":"peer"' && GHOSTS_AFTER=$((GHOSTS_AFTER + 1))
done
say "$GHOSTS_AFTER/20 ghost probes misdirected after pollution (§7: 79% vs 40%)"
[[ "$GHOSTS_AFTER" -ge 15 ]] || fail "pollution misdirected only $GHOSTS_AFTER/20 ghosts"
[[ "$GHOSTS_AFTER" -gt $((GHOSTS_BEFORE + 10)) ]] || fail "no pollution gap"

say "stopping peer server B"
kill -TERM "$SERVER_B_PID"
wait "$SERVER_B_PID" || fail "server B exited non-zero on SIGTERM"

# ---------------------------------------------------------------------------
# Rate-limited mutation plane: a third server throttles per-client mutations
# (-rate-mutations, practically zero refill so the arithmetic is exact). A
# burst of ghost adds spends the budget, the overflow answers 429 with a
# Retry-After, and the accounting endpoint names the offending client.

say "=== rate-limited mutation plane ==="
C_ADDR="127.0.0.1:${SMOKE_PORT3:-18381}"
C_BASE="http://$C_ADDR"
LOG_C="$(dirname "$BIN")/serve-c.log"

say "starting rate-limited server C on $C_ADDR (-rate-mutations 0.01 -rate-burst 5)"
"$BIN" serve -addr "$C_ADDR" -rate-mutations 0.01 -rate-burst 5 >"$LOG_C" 2>&1 &
SERVER_C_PID=$!
for i in $(seq 1 50); do
  curl -sf "$C_BASE/v1/info" >/dev/null 2>&1 && break
  kill -0 "$SERVER_C_PID" 2>/dev/null || { LOG="$LOG_C" fail "server C exited during startup"; }
  sleep 0.1
done
curl -sf "$C_BASE/v1/info" >/dev/null || fail "server C never came up"

say "bursting 12 ghost adds at the default filter"
OK_COUNT=0
THROTTLED=0
RETRY_SEEN=""
for i in $(seq 1 12); do
  HDRS="$(dirname "$BIN")/rate-hdrs.txt"
  CODE=$(curl -s -D "$HDRS" -o /dev/null -w '%{http_code}' \
    -X POST "$C_BASE/v2/filters/default/add" -d "{\"item\":\"burst-ghost-$i\"}")
  case "$CODE" in
    200) OK_COUNT=$((OK_COUNT + 1)) ;;
    429)
      THROTTLED=$((THROTTLED + 1))
      grep -qi '^retry-after: ' "$HDRS" && RETRY_SEEN=yes
      ;;
    *) fail "burst add $i answered $CODE" ;;
  esac
done
say "burst outcome: $OK_COUNT accepted, $THROTTLED throttled"
[[ "$OK_COUNT" == "5" ]] || fail "burst allowed $OK_COUNT adds, want exactly the burst of 5"
[[ "$THROTTLED" == "7" ]] || fail "burst throttled $THROTTLED adds, want 7"
[[ "$RETRY_SEEN" == "yes" ]] || fail "429 answers carried no Retry-After header"

say "the v1 shim shares the same spent budget"
V1_CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$C_BASE/v1/add" -d '{"item":"v1-ghost"}')
[[ "$V1_CODE" == "429" ]] || fail "v1 add on a spent budget answered $V1_CODE, want 429"

say "the accounting endpoint names the offender"
CLIENTS=$(curl -sf "$C_BASE/v2/filters/default/clients")
echo "$CLIENTS" | grep -q '"client":"127.0.0.1"' || fail "offender not named: $CLIENTS"
echo "$CLIENTS" | grep -q '"allowed":5' || fail "allowed count wrong: $CLIENTS"
echo "$CLIENTS" | grep -q '"throttled":8' || fail "throttled count wrong: $CLIENTS"
curl -sf "$C_BASE/v2/filters/default/stats" | grep -q '"throttled_mutations":8' \
  || fail "stats missing the throttle aggregate"

say "reads stay free on a spent budget"
curl -sf -X POST "$C_BASE/v2/filters/default/test" -d '{"item":"burst-ghost-1"}' \
  | grep -q '"present"' || fail "test endpoint throttled"

say "stopping rate-limited server C"
kill -TERM "$SERVER_C_PID"
wait "$SERVER_C_PID" || fail "server C exited non-zero on SIGTERM"

# ---------------------------------------------------------------------------
# RESP binary plane: a fourth server opens the redis-protocol listener
# (-resp-addr) beside HTTP, rate-limited so the cross-plane bucket rule is
# observable. `evilbloom resp-cli` is the bundled redis-cli stand-in —
# byte-identical protocol, same reply formatting. The section drives:
# BF.RESERVE, one pipelined 100-item BF.MADD, EXISTS probes, a rate-limit
# burst answered with -BUSY over RESP, and the same spent bucket answering
# 429 over HTTP (no side door between the planes).

say "=== RESP binary plane ==="
D_ADDR="127.0.0.1:${SMOKE_PORT4:-18382}"
D_BASE="http://$D_ADDR"
D_RESP="127.0.0.1:${SMOKE_RESP_PORT:-16390}"
LOG_D="$(dirname "$BIN")/serve-d.log"

say "starting server D on $D_ADDR with -resp-addr $D_RESP (-rate-mutations 0.01 -rate-burst 105)"
"$BIN" serve -addr "$D_ADDR" -resp-addr "$D_RESP" -rate-mutations 0.01 -rate-burst 105 >"$LOG_D" 2>&1 &
SERVER_D_PID=$!
for i in $(seq 1 50); do
  curl -sf "$D_BASE/v1/info" >/dev/null 2>&1 && break
  kill -0 "$SERVER_D_PID" 2>/dev/null || { LOG="$LOG_D" fail "server D exited during startup"; }
  sleep 0.1
done
curl -sf "$D_BASE/v1/info" >/dev/null || fail "server D never came up"

rcli() { "$BIN" resp-cli -addr "$D_RESP" "$@"; }

say "PING over RESP"
rcli PING | grep -q '^PONG$' || fail "RESP PING failed"

say "creating a filter over RESP: BF.RESERVE rsmoke (m=4096, k=4, naive seed 3)"
rcli BF.RESERVE rsmoke 0 0 SHARDS 1 SHARDBITS 4096 HASHES 4 SEED 3 | grep -q '^OK$' \
  || fail "BF.RESERVE failed"

say "pipelined 100-item BF.MADD (one command, one shard pass)"
MADD_ITEMS=()
for i in $(seq 1 100); do MADD_ITEMS+=("http://resp.example/$i"); done
MADD_OUT=$(rcli BF.MADD rsmoke "${MADD_ITEMS[@]}")
MADD_ADDED=$(echo "$MADD_OUT" | grep -c '(integer) 1' || true)
[[ "$MADD_ADDED" == "100" ]] || fail "BF.MADD added $MADD_ADDED/100 items: $MADD_OUT"

say "EXISTS probes: inserted items present, fresh item absent"
rcli BF.EXISTS rsmoke "http://resp.example/1" | grep -q '(integer) 1' || fail "inserted item absent over RESP"
rcli BF.EXISTS rsmoke "never-inserted-item" | grep -q '(integer) 0' || fail "fresh item present over RESP"
rcli BF.INFO rsmoke | grep -q 'count' || fail "BF.INFO gave no count"

say "bursting 12 pipelined BF.ADDs at the 5 tokens left after the MADD"
BURST_OUT=$(rcli -repeat 12 BF.ADD rsmoke burst-ghost)
BURST_OK=$(echo "$BURST_OUT" | grep -c '(integer)' || true)
BURST_BUSY=$(echo "$BURST_OUT" | grep -c '(error) BUSY' || true)
say "burst outcome over RESP: $BURST_OK accepted, $BURST_BUSY busy"
[[ "$BURST_OK" == "5" ]] || fail "RESP burst allowed $BURST_OK adds, want exactly 5: $BURST_OUT"
[[ "$BURST_BUSY" == "7" ]] || fail "RESP burst bounced $BURST_BUSY adds, want 7: $BURST_OUT"
echo "$BURST_OUT" | grep -q 'retry after [0-9]*s' || fail "-BUSY reply carried no retry seconds"

say "the HTTP plane shares the spent bucket (no side door)"
X_CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$D_BASE/v2/filters/rsmoke/add" -d '{"item":"http-ghost"}')
[[ "$X_CODE" == "429" ]] || fail "HTTP add on a RESP-spent budget answered $X_CODE, want 429"

say "reads stay free over RESP on the spent budget"
rcli BF.EXISTS rsmoke "http://resp.example/2" | grep -q '(integer) 1' || fail "RESP read throttled"

say "stopping server D (graceful drain covers the RESP listener)"
kill -TERM "$SERVER_D_PID"
wait "$SERVER_D_PID" || fail "server D exited non-zero on SIGTERM"
grep -q "durable state flushed\|bye" "$LOG_D" || fail "server D did not drain cleanly"

# ---------------------------------------------------------------------------
# Authenticated three-node quorum mesh: servers E (quorum-2 router), F
# (honest sibling) and G (evil sibling) share a credential roster
# (-peer-token, each node's own entry first). The section asserts the whole
# mesh story end to end: quorum route verdicts (two corroborating siblings
# route "peer", one alone does not), delta frames on sparse refreshes,
# anonymous digest pushes bouncing with 401, and live credential revocation
# ejecting the evil sibling — its saturated digest is evicted and its
# refreshes stop verifying. Refresh interval is an hour: every exchange
# after boot is driven explicitly, so verdicts are deterministic.

say "=== authenticated three-node quorum mesh ==="
E_ADDR="127.0.0.1:${SMOKE_PORT5:-18383}"
F_ADDR="127.0.0.1:${SMOKE_PORT6:-18384}"
G_ADDR="127.0.0.1:${SMOKE_PORT7:-18385}"
E_BASE="http://$E_ADDR"; F_BASE="http://$F_ADDR"; G_BASE="http://$G_ADDR"
LOG_E="$(dirname "$BIN")/serve-e.log"
LOG_F="$(dirname "$BIN")/serve-f.log"
LOG_G="$(dirname "$BIN")/serve-g.log"
ROSTER=(-peer "$E_BASE" -peer "$F_BASE" -peer "$G_BASE" -peer-refresh 1h -route-quorum 2)

say "starting mesh nodes E/F/G on $E_ADDR/$F_ADDR/$G_ADDR (quorum 2, shared roster)"
"$BIN" serve -addr "$E_ADDR" "${ROSTER[@]}" -self "$E_BASE" \
  -peer-token nodeE:se -peer-token nodeF:sf -peer-token nodeG:sg >"$LOG_E" 2>&1 &
SERVER_E_PID=$!
"$BIN" serve -addr "$F_ADDR" "${ROSTER[@]}" -self "$F_BASE" \
  -peer-token nodeF:sf -peer-token nodeE:se -peer-token nodeG:sg >"$LOG_F" 2>&1 &
SERVER_F_PID=$!
"$BIN" serve -addr "$G_ADDR" "${ROSTER[@]}" -self "$G_BASE" \
  -peer-token nodeG:sg -peer-token nodeE:se -peer-token nodeF:sf >"$LOG_G" 2>&1 &
SERVER_G_PID=$!
mesh_wait() { # name base log pid
  for i in $(seq 1 50); do
    curl -sf "$2/v1/info" >/dev/null 2>&1 && return 0
    kill -0 "$4" 2>/dev/null || { LOG="$3" fail "mesh node $1 exited during startup"; }
    sleep 0.1
  done
  LOG="$3" fail "mesh node $1 never came up"
}
mesh_wait E "$E_BASE" "$LOG_E" "$SERVER_E_PID"
mesh_wait F "$F_BASE" "$LOG_F" "$SERVER_F_PID"
mesh_wait G "$G_BASE" "$LOG_G" "$SERVER_G_PID"

say "creating the shared 'mesh' filter on all three nodes"
for b in "$E_BASE" "$F_BASE" "$G_BASE"; do
  curl -sf -X PUT "$b/v2/filters/mesh" -d "$MESH" >/dev/null || fail "creating mesh filter on $b failed"
done

say "caching shared-item on both siblings: quorum 2 is met, E routes 'peer'"
curl -sf -X POST "$F_BASE/v2/filters/mesh/add" -d '{"item":"shared-item"}' >/dev/null
curl -sf -X POST "$G_BASE/v2/filters/mesh/add" -d '{"item":"shared-item"}' >/dev/null
curl -sf -X POST "$E_BASE/v2/filters/mesh/peers/refresh" >/dev/null
ROUTE=$(curl -sf -X POST "$E_BASE/v2/filters/mesh/route" -d '{"item":"shared-item"}')
echo "$ROUTE" | grep -q '"verdict":"peer"' || fail "corroborated item not routed to a peer: $ROUTE"
echo "$ROUTE" | grep -q '"claiming":2' || fail "route did not report two claimants: $ROUTE"
echo "$ROUTE" | grep -q '"quorum":2' || fail "route did not report the quorum: $ROUTE"

say "caching solo-item on one sibling only: quorum 2 unmet, E routes 'origin'"
curl -sf -X POST "$F_BASE/v2/filters/mesh/add" -d '{"item":"solo-item"}' >/dev/null
REFRESH=$(curl -sf -X POST "$E_BASE/v2/filters/mesh/peers/refresh")
ROUTE=$(curl -sf -X POST "$E_BASE/v2/filters/mesh/route" -d '{"item":"solo-item"}')
echo "$ROUTE" | grep -q '"verdict":"origin"' || fail "single-sibling item beat quorum 2: $ROUTE"
echo "$ROUTE" | grep -q '"claiming":1' || fail "route did not report the lone claimant: $ROUTE"

say "the sparse second refresh rode a delta frame, not a full envelope"
echo "$REFRESH" | grep -q '"delta_fetches":' || fail "no delta fetch recorded: $REFRESH"

say "an anonymous digest push bounces off the authenticated mesh with 401"
PUSH_CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  --data-binary @"$DIGEST_FILE" "$E_BASE/v2/filters/mesh/digest?peer=evil")
[[ "$PUSH_CODE" == "401" ]] || fail "anonymous digest push answered $PUSH_CODE, want 401"

say "evil sibling G saturates its digest (60 inserts into 64 bits)"
EVIL=$(printf '"evil-%s",' $(seq 1 60))
curl -sf -X POST "$G_BASE/v2/filters/mesh/add-batch" -d "{\"items\":[${EVIL%,}]}" >/dev/null \
  || fail "evil pollution batch failed"
peer_weight_max() { # heaviest digest E holds of any sibling
  curl -sf "$E_BASE/v2/filters/mesh/peers" | grep -o '"digest_weight":[0-9]*' \
    | grep -o '[0-9]*$' | sort -n | tail -1
}
curl -sf -X POST "$E_BASE/v2/filters/mesh/peers/refresh" >/dev/null
WEIGHT=$(peer_weight_max)
say "heaviest sibling digest on E after pollution: $WEIGHT/64 bits"
[[ "${WEIGHT:-0}" -ge 60 ]] || fail "evil digest not saturated on E (weight ${WEIGHT:-0})"

say "quorum blunts the saturated digest: ghost probes still need an honest accomplice"
QUORUM_GHOSTS=0
for i in $(seq 0 19); do
  curl -sf -X POST "$E_BASE/v2/filters/mesh/route" -d "{\"item\":\"quorum-ghost-$i\"}" \
    | grep -q '"verdict":"peer"' && QUORUM_GHOSTS=$((QUORUM_GHOSTS + 1))
done
say "$QUORUM_GHOSTS/20 ghost probes misdirected under quorum 2 (saturated sibling alone cannot vote)"
[[ "$QUORUM_GHOSTS" -le 3 ]] || fail "quorum 2 still misdirected $QUORUM_GHOSTS/20 ghosts"

say "revoking nodeG's credential on E: eviction is live"
REVOKE=$(curl -sf -X DELETE "$E_BASE/v2/peer-tokens/nodeG")
echo "$REVOKE" | grep -q '"revoked":"nodeG"' || fail "unexpected revocation response: $REVOKE"
# G sealed digests for both same-named filters E watches (mesh AND the
# default filter every serve process creates), so eviction scrubs ≥ 1.
EVICTED=$(echo "$REVOKE" | grep -o '"digests_evicted":[0-9]*' | grep -o '[0-9]*$')
[[ "${EVICTED:-0}" -ge 1 ]] || fail "revocation evicted nothing: $REVOKE"

say "G's refreshes stop verifying; its digest stays out"
REFRESH=$(curl -sf -X POST "$E_BASE/v2/filters/mesh/peers/refresh")
echo "$REFRESH" | grep -q 'no live credential for peer' || fail "revoked refetch recorded no credential error: $REFRESH"
WEIGHT=$(peer_weight_max)
say "heaviest sibling digest on E after revocation: ${WEIGHT:-0}/64 bits (honest sibling only)"
[[ "${WEIGHT:-0}" -le 20 ]] || fail "saturated evil digest survived revocation (weight $WEIGHT)"

say "post-revocation ghost probes all route to the origin"
POST_GHOSTS=0
for i in $(seq 0 19); do
  curl -sf -X POST "$E_BASE/v2/filters/mesh/route" -d "{\"item\":\"quorum-ghost-$i\"}" \
    | grep -q '"verdict":"peer"' && POST_GHOSTS=$((POST_GHOSTS + 1))
done
[[ "$POST_GHOSTS" == "0" ]] || fail "revoked sibling still misdirects $POST_GHOSTS/20 ghosts"

say "stopping mesh nodes E/F/G"
for pid in "$SERVER_E_PID" "$SERVER_F_PID" "$SERVER_G_PID"; do
  kill -TERM "$pid"
  wait "$pid" || fail "a mesh node exited non-zero on SIGTERM"
done
unset SERVER_E_PID SERVER_F_PID SERVER_G_PID

say "OK"
